"""Benchmark regression comparison: current ``BENCH_*.json`` vs baseline.

The benchmark scripts under ``benchmarks/`` each emit one
``BENCH_<name>.json`` document of plain numbers.  This module compares
such documents against committed baselines (``benchmarks/baselines/``)
under per-metric :class:`MetricRule` thresholds, renders a table, and
returns audit-convention exit codes — the engine behind
``repro bench-diff`` and the CI regression gate.

Thresholding is relative with an absolute floor: a metric regresses
when it worsens by more than ``max_change_pct`` percent of the baseline
*and* by more than ``min_delta`` in absolute units.  The floor keeps
near-zero baselines (for example a 1.07% observer overhead measured on
a shared CI box) from tripping the relative test on timing noise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Exit codes, matching the ``audit`` convention.
EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_TOOL_ERROR = 2


@dataclass(frozen=True)
class MetricRule:
    """Threshold for one metric inside one ``BENCH_<bench>.json``."""

    bench: str  # file stem: BENCH_<bench>.json
    path: Tuple[str, ...]  # key path into the document
    max_change_pct: float = 15.0  # worsening allowed, % of baseline
    min_delta: float = 0.0  # absolute worsening floor (noise guard)
    direction: str = "lower"  # "lower" or "higher" is better

    @property
    def label(self) -> str:
        return f"{self.bench}:{'.'.join(self.path)}"


#: Default gate: the observer-overhead noop configs (the hot-path cost
#: this repo actively optimizes), the full stack as advisory, the
#: whole-set compile times (opt 0, opt 2 which adds the interprocedural
#: summary fixpoint, and opt 3 which adds the per-edge feasible-path
#: MFP), and the Figure-7 detection rates at the default and opt-3
#: tables (direction "higher": the seeded campaigns are deterministic,
#: so a drop means the tables really got weaker, not noise).
DEFAULT_RULES: Tuple[MetricRule, ...] = (
    MetricRule(
        "observer_overhead",
        ("configs", "noop_events", "overhead_vs_bare_pct"),
        min_delta=2.0,
    ),
    MetricRule(
        "observer_overhead",
        ("configs", "noop_instr", "overhead_vs_bare_pct"),
        min_delta=2.5,
    ),
    MetricRule(
        "observer_overhead",
        ("configs", "full_stack", "overhead_vs_bare_pct"),
        max_change_pct=30.0,
        min_delta=40.0,
    ),
    # Throughput metrics are direction "higher": the batched delivery /
    # ring-buffer / segment-mode work exists to push these up, and the
    # gate must catch a refactor that quietly gives the win back.  The
    # absolute floors sit above same-box timing noise (~10%).
    MetricRule(
        "observer_overhead",
        ("summary", "full_stack_steps_per_sec"),
        max_change_pct=25.0,
        min_delta=20_000.0,
        direction="higher",
    ),
    MetricRule(
        "observer_overhead",
        ("summary", "full_stack_segment_steps_per_sec"),
        max_change_pct=25.0,
        min_delta=40_000.0,
        direction="higher",
    ),
    MetricRule(
        "observer_overhead",
        ("summary", "full_stack_segment_overhead_vs_bare_pct"),
        max_change_pct=30.0,
        min_delta=40.0,
    ),
    # The tracing-enabled full stack: throughput must stay up
    # (direction "higher") and the marginal cost of the per-run span +
    # histogram observations over the untraced full stack must stay a
    # few percent — if tracing ever leaks into the interpreter hot
    # loop, this pair trips long before users notice.
    MetricRule(
        "observer_overhead",
        ("summary", "full_stack_traced_steps_per_sec"),
        max_change_pct=25.0,
        min_delta=20_000.0,
        direction="higher",
    ),
    MetricRule(
        "observer_overhead",
        ("summary", "tracing_overhead_vs_full_stack_pct"),
        max_change_pct=100.0,
        min_delta=5.0,
    ),
    MetricRule(
        "fig7_detection",
        ("total", "steps_per_sec"),
        max_change_pct=25.0,
        min_delta=30_000.0,
        direction="higher",
    ),
    MetricRule(
        "compile_time",
        ("total", "opt0_seconds"),
        max_change_pct=50.0,
        min_delta=1.0,
    ),
    MetricRule(
        "compile_time",
        ("total", "opt2_seconds"),
        max_change_pct=50.0,
        min_delta=1.0,
    ),
    MetricRule(
        "compile_time",
        ("total", "opt3_seconds"),
        max_change_pct=50.0,
        min_delta=1.0,
    ),
    MetricRule(
        "fig7_detection",
        ("detection", "avg_pct_detected_of_changed"),
        max_change_pct=10.0,
        min_delta=2.0,
        direction="higher",
    ),
    MetricRule(
        "fig7_detection",
        ("detection_opt3", "avg_pct_detected_of_changed"),
        max_change_pct=10.0,
        min_delta=2.0,
        direction="higher",
    ),
    # The static detection-rate lower bound (repro predict joined
    # against the seeded campaigns).  Fully deterministic — seeds,
    # layouts, and the prover are all fixed — so ANY drop means the
    # prover proves strictly less than it used to: zero tolerance.
    MetricRule(
        "fig7_detection",
        ("predicted_lower_bound", "opt0"),
        max_change_pct=0.0,
        min_delta=0.0,
        direction="higher",
    ),
    MetricRule(
        "fig7_detection",
        ("predicted_lower_bound", "opt3"),
        max_change_pct=0.0,
        min_delta=0.0,
        direction="higher",
    ),
)


@dataclass(frozen=True)
class MetricDelta:
    """Outcome of one rule evaluation."""

    rule: MetricRule
    baseline: Optional[float]
    current: Optional[float]
    missing: Optional[str] = None  # which side is absent, if any

    @property
    def delta(self) -> Optional[float]:
        if self.baseline is None or self.current is None:
            return None
        return self.current - self.baseline

    @property
    def pct_change(self) -> Optional[float]:
        if self.delta is None:
            return None
        if self.baseline == 0:
            return 0.0 if self.delta == 0 else float("inf")
        return 100.0 * self.delta / abs(self.baseline)

    @property
    def regressed(self) -> bool:
        if self.delta is None:
            return False
        worsening = (
            self.delta if self.rule.direction == "lower" else -self.delta
        )
        if worsening <= self.rule.min_delta:
            return False
        allowed = abs(self.baseline) * self.rule.max_change_pct / 100.0
        return worsening > allowed

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metric": self.rule.label,
            "direction": self.rule.direction,
            "baseline": self.baseline,
            "current": self.current,
            "delta": self.delta,
            "pct_change": self.pct_change,
            "max_change_pct": self.rule.max_change_pct,
            "min_delta": self.rule.min_delta,
            "missing": self.missing,
            "regressed": self.regressed,
        }


def _load_bench(directory: str, bench: str) -> Optional[Dict[str, Any]]:
    path = os.path.join(directory, f"BENCH_{bench}.json")
    if not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _lookup(document: Dict[str, Any], path: Tuple[str, ...]) -> Optional[float]:
    node: Any = document
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return float(node) if isinstance(node, (int, float)) else None


def compare_dirs(
    baseline_dir: str,
    current_dir: str,
    rules: Sequence[MetricRule] = DEFAULT_RULES,
) -> List[MetricDelta]:
    """Evaluate every rule; one :class:`MetricDelta` per rule."""
    deltas: List[MetricDelta] = []
    documents: Dict[Tuple[str, str], Optional[Dict[str, Any]]] = {}
    for rule in rules:
        for side, directory in (
            ("baseline", baseline_dir),
            ("current", current_dir),
        ):
            key = (side, rule.bench)
            if key not in documents:
                documents[key] = _load_bench(directory, rule.bench)
        base_doc = documents[("baseline", rule.bench)]
        cur_doc = documents[("current", rule.bench)]
        missing = None
        baseline = current = None
        if base_doc is None:
            missing = "baseline file"
        elif cur_doc is None:
            missing = "current file"
        else:
            baseline = _lookup(base_doc, rule.path)
            current = _lookup(cur_doc, rule.path)
            if baseline is None:
                missing = "baseline metric"
            elif current is None:
                missing = "current metric"
        deltas.append(
            MetricDelta(
                rule=rule, baseline=baseline, current=current, missing=missing
            )
        )
    return deltas


def render_table(deltas: Sequence[MetricDelta]) -> str:
    """Aligned text table, one row per rule."""
    rows = [("metric", "baseline", "current", "delta", "verdict")]
    for delta in deltas:
        if delta.missing is not None:
            rows.append(
                (delta.rule.label, "-", "-", "-", f"missing {delta.missing}")
            )
            continue
        verdict = "REGRESSED" if delta.regressed else "ok"
        rows.append(
            (
                delta.rule.label,
                f"{delta.baseline:.2f}",
                f"{delta.current:.2f}",
                f"{delta.delta:+.2f} ({delta.pct_change:+.1f}%)",
                verdict,
            )
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]
    regressions = sum(1 for d in deltas if d.regressed)
    lines.append(f"{len(deltas)} metric(s), {regressions} regression(s)")
    return "\n".join(lines)


def evaluate(
    deltas: Sequence[MetricDelta], required: Sequence[str] = ()
) -> int:
    """Exit code for a comparison: missing *required* benches are tool
    errors; any regression fails; otherwise clean."""
    for name in required:
        covering = [d for d in deltas if d.rule.bench == name]
        if not covering:
            return EXIT_TOOL_ERROR
        if any(d.missing is not None for d in covering):
            return EXIT_TOOL_ERROR
    if any(d.regressed for d in deltas):
        return EXIT_REGRESSION
    return EXIT_OK


def build_arg_parser(
    parser: Optional[argparse.ArgumentParser] = None,
) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="bench_compare",
            description="Compare BENCH_*.json against committed baselines.",
        )
    parser.add_argument(
        "--baseline", default="benchmarks/baselines",
        help="directory holding baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current", default=".",
        help="directory holding freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the comparison as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="BENCH",
        help="fail with exit 2 unless this bench is present on both "
             "sides (repeatable); e.g. --require observer_overhead",
    )
    return parser


def run_diff(args: argparse.Namespace) -> int:
    deltas = compare_dirs(args.baseline, args.current)
    print(render_table(deltas))
    if args.json:
        payload = json.dumps(
            {
                "version": 1,
                "tool": "repro-bench-diff",
                "metrics": [d.to_dict() for d in deltas],
            },
            indent=2,
            sort_keys=True,
        )
        if args.json == "-":
            sys.stdout.write(payload + "\n")
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
    return evaluate(deltas, args.require)


def main(argv: Optional[Sequence[str]] = None) -> int:
    return run_diff(build_arg_parser().parse_args(argv))
