"""Hierarchical span tracing with cross-process context propagation.

The flat counters/timers of :mod:`repro.observability.metrics` say *how
much* and *how long*; spans say *where the time went, causally*.  A
:class:`Tracer` records a tree of :class:`SpanRecord` objects —
``trace_id`` / ``span_id`` / ``parent_id`` with attributes and
timestamped events — exactly the vocabulary of distributed tracing,
scaled down to one dependency-free module.

Two propagation boundaries matter in this codebase:

* **process pools** — the sharded campaign engine ships a picklable
  :class:`TraceContext` to each worker; the worker opens its shard and
  per-attack spans under that context and returns them as plain dicts
  in its :class:`~repro.parallel.engine.ShardResult`, which the parent
  adopts back into one connected tree;
* **daemon sessions** — ``repro serve`` parents every
  :class:`~repro.service.engine.DetectionSession` span under one
  long-lived daemon root span via an explicit parent context.

Export formats:

* **Chrome trace-event JSON** (:func:`chrome_trace`) — complete
  ("ph": "X") events with microsecond timestamps, loadable directly in
  Perfetto / ``chrome://tracing``; span identity and parentage ride in
  ``args`` so tooling can rebuild the tree exactly;
* **JSONL** — one span record per line through the existing
  :class:`~repro.observability.telemetry.JsonlWriter` path (paths
  ending in ``.jsonl``).

Tracing is strictly opt-in: every integration point takes
``Optional[Tracer]`` and the :func:`maybe_span` helper degrades to a
``nullcontext`` when no tracer is attached, so the disabled-by-default
path costs one ``None`` check at run boundaries — the interpreter hot
loop is never touched.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

#: Span-record schema version (carried in exported documents).
TRACE_VERSION = 1


def new_id() -> str:
    """A 16-hex-char id, unique across processes (urandom-backed)."""
    return uuid.uuid4().hex[:16]


def _clean_attributes(attributes: Dict[str, Any]) -> Dict[str, Any]:
    """Coerce attribute values to JSON-safe scalars."""
    return {
        key: value if isinstance(value, (str, int, float, bool)) else str(value)
        for key, value in attributes.items()
        if value is not None
    }


@dataclass(frozen=True)
class TraceContext:
    """The picklable cross-boundary handle: which trace, which parent.

    This is what crosses process-pool and socket boundaries — two short
    strings, never live objects.
    """

    trace_id: str
    span_id: str

    def to_dict(self) -> Dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "TraceContext":
        return cls(trace_id=data["trace_id"], span_id=data["span_id"])


@dataclass
class SpanRecord:
    """One span: a named, attributed interval in the trace tree."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str]
    start_us: int
    duration_us: int = 0
    attributes: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    pid: int = field(default_factory=os.getpid)
    tid: int = 0

    @property
    def context(self) -> TraceContext:
        return TraceContext(trace_id=self.trace_id, span_id=self.span_id)

    def set_attributes(self, **attributes: Any) -> None:
        self.attributes.update(_clean_attributes(attributes))

    def add_event(self, name: str, **attributes: Any) -> None:
        """A timestamped point annotation inside this span."""
        self.events.append(
            {
                "name": name,
                "ts_us": int(time.time() * 1e6),
                **_clean_attributes(attributes),
            }
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start_us": self.start_us,
            "duration_us": self.duration_us,
            "attributes": dict(self.attributes),
            "events": list(self.events),
            "pid": self.pid,
            "tid": self.tid,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=data["name"],
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data.get("parent_id"),
            start_us=data.get("start_us", 0),
            duration_us=data.get("duration_us", 0),
            attributes=dict(data.get("attributes", {})),
            events=list(data.get("events", [])),
            pid=data.get("pid", 0),
            tid=data.get("tid", 0),
        )


class Tracer:
    """Records a tree of spans for one trace.

    Thread-safe in the way the daemon needs: the *active span stack* is
    thread-local (each worker thread nests its own spans), while the
    finished-span list is shared (list.append is atomic).  A tracer
    seeded with a :class:`TraceContext` parents its top-level spans
    under that context — that is how a shard worker's spans connect to
    the campaign root recorded in another process.
    """

    def __init__(
        self,
        service: str = "repro",
        context: Optional[TraceContext] = None,
    ) -> None:
        self.service = service
        self.trace_id = context.trace_id if context is not None else new_id()
        #: Parent for top-of-stack spans (cross-boundary linkage).
        self.root_parent_id = context.span_id if context is not None else None
        self.finished: List[SpanRecord] = []
        self._local = threading.local()

    # -- span lifecycle ---------------------------------------------------

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current_span(self) -> Optional[SpanRecord]:
        stack = self._stack()
        return stack[-1] if stack else None

    def current_context(self) -> TraceContext:
        """The context to hand across a boundary *right now*: the active
        span if any, else the tracer's own root linkage."""
        current = self.current_span
        if current is not None:
            return current.context
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self.root_parent_id or self.trace_id,
        )

    @contextmanager
    def span(
        self,
        name: str,
        parent: Optional[TraceContext] = None,
        **attributes: Any,
    ) -> Iterator[SpanRecord]:
        """Open one span; yields the live record for attribute updates.

        ``parent`` overrides the implicit parent (this thread's active
        span, else the tracer's root context) — the daemon uses it to
        hang concurrently-running session spans under its root span.
        """
        stack = self._stack()
        if parent is not None:
            parent_id: Optional[str] = parent.span_id
        elif stack:
            parent_id = stack[-1].span_id
        else:
            parent_id = self.root_parent_id
        record = SpanRecord(
            name=name,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=parent_id,
            start_us=int(time.time() * 1e6),
            attributes=_clean_attributes(attributes),
            tid=threading.get_ident() & 0x7FFFFFFF,
        )
        started = time.perf_counter()
        stack.append(record)
        try:
            yield record
        finally:
            record.duration_us = int((time.perf_counter() - started) * 1e6)
            stack.pop()
            self.finished.append(record)

    def event(self, name: str, **attributes: Any) -> None:
        """Annotate the current span (no-op outside any span)."""
        current = self.current_span
        if current is not None:
            current.add_event(name, **attributes)

    # -- cross-boundary merge ---------------------------------------------

    def span_dicts(self) -> List[Dict[str, Any]]:
        """Finished spans as picklable plain dicts (shard results)."""
        return [record.to_dict() for record in self.finished]

    def adopt(self, span_dicts: Optional[Sequence[Dict[str, Any]]]) -> int:
        """Fold spans recorded elsewhere (a worker process, a session)
        into this tracer; returns how many were adopted."""
        if not span_dicts:
            return 0
        for data in span_dicts:
            self.finished.append(SpanRecord.from_dict(data))
        return len(span_dicts)


def maybe_span(
    tracer: Optional[Tracer],
    name: str,
    parent: Optional[TraceContext] = None,
    **attributes: Any,
):
    """``tracer.span(...)`` when tracing is on, ``nullcontext`` when off.

    The one helper every integration point calls, so disabled tracing
    costs a single ``None`` check at run boundaries.
    """
    if tracer is None:
        return nullcontext()
    return tracer.span(name, parent=parent, **attributes)


# ----------------------------------------------------------------------
# Export
# ----------------------------------------------------------------------


SpanLike = Union[SpanRecord, Dict[str, Any]]


def _as_dict(span: SpanLike) -> Dict[str, Any]:
    return span.to_dict() if isinstance(span, SpanRecord) else span


def chrome_trace(
    spans: Sequence[SpanLike], service: str = "repro"
) -> Dict[str, Any]:
    """Spans as a Chrome trace-event JSON document (Perfetto-loadable).

    Each span becomes one complete ("X") event; ``args`` carries the
    span identity (``trace_id`` / ``span_id`` / ``parent_id``) plus the
    span attributes, so the exact tree — not just the visual nesting —
    survives the export.
    """
    events: List[Dict[str, Any]] = []
    for span in spans:
        data = _as_dict(span)
        events.append(
            {
                "name": data["name"],
                "cat": service,
                "ph": "X",
                "ts": data["start_us"],
                "dur": max(int(data["duration_us"]), 1),
                "pid": data["pid"],
                "tid": data["tid"],
                "args": {
                    "trace_id": data["trace_id"],
                    "span_id": data["span_id"],
                    "parent_id": data["parent_id"],
                    **data.get("attributes", {}),
                },
            }
        )
        for event in data.get("events", []):
            events.append(
                {
                    "name": event.get("name", "event"),
                    "cat": service,
                    "ph": "i",
                    "ts": event.get("ts_us", data["start_us"]),
                    "pid": data["pid"],
                    "tid": data["tid"],
                    "s": "t",
                    "args": {"span_id": data["span_id"]},
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"tool": "repro-tracing", "version": TRACE_VERSION},
    }


def write_spans(
    spans: Sequence[SpanLike], path: str, service: str = "repro"
) -> int:
    """Export spans to ``path``; returns the span count.

    Paths ending in ``.jsonl`` get one span record per line, appended
    (the accumulating-log convention shared with ``--metrics-out``);
    any other path gets one Chrome trace-event JSON document,
    overwritten.
    """
    records = [_as_dict(span) for span in spans]
    if path.endswith(".jsonl"):
        from .telemetry import JsonlWriter

        return JsonlWriter(path).write_all(records)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(records, service), handle, indent=2,
                  sort_keys=True)
        handle.write("\n")
    return len(records)


# ----------------------------------------------------------------------
# Validation (the CI artifact gate and the well-formedness tests)
# ----------------------------------------------------------------------


def validate_chrome_trace(document: Any) -> List[str]:
    """Structural errors in a Chrome trace-event document (empty = valid).

    Checks the trace-event grammar (required fields, integer
    timestamps) and the span-tree invariants this repo promises: unique
    span ids, every non-root parent resolvable, and one connected tree
    per trace.
    """
    errors: List[str] = []
    if not isinstance(document, dict):
        return [f"document must be a JSON object, got {type(document).__name__}"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document needs a 'traceEvents' list"]
    span_ids: Dict[str, Optional[str]] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event #{index} is not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                errors.append(f"event #{index} missing {key!r}")
        if event.get("ph") not in ("X", "i"):
            errors.append(
                f"event #{index} has unexpected phase {event.get('ph')!r}"
            )
        for key in ("ts", "pid", "tid"):
            if key in event and not isinstance(event[key], int):
                errors.append(f"event #{index} {key!r} is not an integer")
        if event.get("ph") == "X":
            if not isinstance(event.get("dur"), int) or event["dur"] < 1:
                errors.append(f"event #{index} needs a positive integer 'dur'")
            args = event.get("args", {})
            span_id = args.get("span_id") if isinstance(args, dict) else None
            if not span_id:
                errors.append(f"event #{index} args missing 'span_id'")
                continue
            if span_id in span_ids:
                errors.append(f"duplicate span_id {span_id!r}")
            span_ids[span_id] = args.get("parent_id")
    if errors:
        return errors
    # Tree invariants: parents exist, and the graph is one tree.
    roots = [sid for sid, parent in span_ids.items() if parent is None]
    for span_id, parent in span_ids.items():
        if parent is not None and parent not in span_ids:
            errors.append(
                f"span {span_id!r} has unknown parent {parent!r}"
            )
    if span_ids and not errors:
        if len(roots) != 1:
            errors.append(
                f"expected exactly one root span, found {len(roots)}"
            )
        else:
            # Connectivity: walk up from every span to the root.
            root = roots[0]
            for span_id in span_ids:
                seen = set()
                node: Optional[str] = span_id
                while node is not None and node not in seen:
                    seen.add(node)
                    node = span_ids.get(node)
                if root not in seen:
                    errors.append(
                        f"span {span_id!r} is not connected to root {root!r}"
                    )
    return errors
