"""Metrics registry: counters, timers, histograms, wall-clock spans.

Deliberately dependency-free and cheap: a counter bump is a dict lookup
plus an integer add, so metrics can ride inside campaign hot loops.
Registries merge, which is how per-process numbers from the sharded
campaign engine roll up into one parent registry (the shard boundary is
crossed as a plain ``snapshot()`` dict — picklable primitives only).

Histograms turn the daemon's single gauges into distributions: fixed
exponential buckets whose snapshots merge associatively, so shard- and
session-local observations fold into campaign- and daemon-level
distributions without ever shipping raw samples.  The Prometheus text
renderer lives in :mod:`repro.observability.prometheus`.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> int:
        self.value += amount
        return self.value


@dataclass
class Timer:
    """Aggregate of wall-clock samples for one named stage."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total_seconds": round(self.total_seconds, 6),
            "mean_seconds": round(self.mean_seconds, 6),
            "min_seconds": round(self.min_seconds, 6) if self.count else 0.0,
            "max_seconds": round(self.max_seconds, 6),
        }


#: Default exponential bucket ladder: 1 µs · 4^i for 24 buckets spans
#: ~1e-6 .. ~7e7 — wide enough that one fixed ladder covers both
#: sub-millisecond compile times and steps-per-second throughputs, so
#: every histogram in the system merges with every other of its name.
DEFAULT_BUCKET_START = 1e-6
DEFAULT_BUCKET_FACTOR = 4.0
DEFAULT_BUCKET_COUNT = 24


def exponential_bounds(
    start: float = DEFAULT_BUCKET_START,
    factor: float = DEFAULT_BUCKET_FACTOR,
    count: int = DEFAULT_BUCKET_COUNT,
) -> Tuple[float, ...]:
    """Ascending upper bucket bounds ``start * factor**i``."""
    if start <= 0 or factor <= 1 or count < 1:
        raise ValueError(
            f"need start > 0, factor > 1, count >= 1; got "
            f"({start}, {factor}, {count})"
        )
    return tuple(start * factor**i for i in range(count))


@dataclass
class Histogram:
    """A mergeable fixed-bucket distribution.

    ``counts`` has one slot per bound plus a final overflow slot
    (everything above the last bound — the ``+Inf`` bucket in
    Prometheus terms).  Counts are *per-bucket*, not cumulative; the
    Prometheus renderer accumulates at exposition time.  Two snapshots
    merge iff their bounds match exactly, which the registry guarantees
    by always building a name's histogram from the same ladder.
    """

    name: str
    bounds: Tuple[float, ...] = field(default_factory=exponential_bounds)
    counts: List[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"histogram {self.name!r}: {len(self.counts)} counts for "
                f"{len(self.bounds)} bounds (need bounds + 1)"
            )

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def to_dict(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def merge(self, data: Dict[str, Any]) -> None:
        """Fold another histogram's snapshot into this one."""
        bounds = tuple(data.get("bounds", ()))
        if bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge differing bucket "
                f"bounds ({len(bounds)} vs {len(self.bounds)} buckets)"
            )
        counts = data.get("counts", [])
        if len(counts) != len(self.counts):
            raise ValueError(
                f"histogram {self.name!r}: malformed snapshot counts"
            )
        for index, value in enumerate(counts):
            self.counts[index] += value
        self.sum += data.get("sum", 0.0)
        self.count += data.get("count", 0)

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs, ending with
        the ``+Inf`` bucket equal to ``count``."""
        pairs: List[Tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self.bounds, self.counts):
            running += bucket
            pairs.append((bound, running))
        pairs.append((float("inf"), running + self.counts[-1]))
        return pairs


@dataclass(frozen=True)
class Span:
    """One completed wall-clock span (per-stage timing record)."""

    name: str
    seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "seconds": round(self.seconds, 6)}


@dataclass
class MetricsRegistry:
    """Named counters + timers + an ordered span log for one run.

    Long-lived deployments (the detection daemon) additionally use
    *gauges* — point-in-time values like "sessions active" that are set,
    not accumulated.  Gauges only appear in :meth:`snapshot` when at
    least one is set, so one-shot runs keep their historical payload
    shape byte-for-byte.
    """

    counters: Dict[str, Counter] = field(default_factory=dict)
    timers: Dict[str, Timer] = field(default_factory=dict)
    spans: List[Span] = field(default_factory=list)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    # -- counters ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def increment(self, name: str, amount: int = 1) -> int:
        return self.counter(name).increment(amount)

    def value(self, name: str) -> int:
        counter = self.counters.get(name)
        return counter.value if counter else 0

    # -- gauges -----------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set a point-in-time value (overwrites any previous reading)."""
        self.gauges[name] = value

    def gauge_value(self, name: str, default: float = 0.0) -> float:
        return self.gauges.get(name, default)

    # -- histograms -------------------------------------------------------

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            if bounds is not None:
                histogram = Histogram(name, bounds=tuple(bounds))
            else:
                histogram = Histogram(name)
            self.histograms[name] = histogram
        return histogram

    def observe_histogram(self, name: str, value: float) -> None:
        """Record one sample into a named distribution."""
        self.histogram(name).observe(value)

    # -- timers / spans ---------------------------------------------------

    def timer(self, name: str) -> Timer:
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Timer(name)
        return timer

    def observe_seconds(self, name: str, seconds: float) -> None:
        self.timer(name).observe(seconds)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a stage: records both a Timer sample and a Span entry."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.observe_seconds(name, elapsed)
            self.spans.append(Span(name, elapsed))

    # -- aggregation ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain-dict view (picklable, JSON-ready) of everything."""
        payload = {
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "timers": {
                name: timer.to_dict()
                for name, timer in sorted(self.timers.items())
            },
            "spans": [span.to_dict() for span in self.spans],
        }
        if self.gauges:
            payload["gauges"] = {
                name: value for name, value in sorted(self.gauges.items())
            }
        # Like gauges: only present when used, so one-shot runs keep the
        # historical payload shape byte-for-byte.
        if self.histograms:
            payload["histograms"] = {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            }
        return payload

    def merge_snapshot(self, snapshot: Optional[Dict[str, Any]]) -> None:
        """Fold a child registry's ``snapshot()`` into this one.

        Used at the sharded campaign engine's merge point: workers
        return their snapshot alongside shard outcomes and the parent
        accumulates them here.
        """
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.increment(name, value)
        for name, data in snapshot.get("timers", {}).items():
            timer = self.timer(name)
            count = data.get("count", 0)
            if not count:
                continue
            timer.count += count
            timer.total_seconds += data.get("total_seconds", 0.0)
            timer.min_seconds = min(
                timer.min_seconds, data.get("min_seconds", float("inf"))
            )
            timer.max_seconds = max(
                timer.max_seconds, data.get("max_seconds", 0.0)
            )
        for span in snapshot.get("spans", []):
            self.spans.append(
                Span(span.get("name", "?"), span.get("seconds", 0.0))
            )
        # Gauges are point-in-time readings: the child's latest value
        # wins (there is nothing meaningful to accumulate).
        for name, value in snapshot.get("gauges", {}).items():
            self.gauges[name] = value
        for name, data in snapshot.get("histograms", {}).items():
            self.histogram(name, bounds=data.get("bounds")).merge(data)
