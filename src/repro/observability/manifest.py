"""Structured run manifests.

A :class:`RunManifest` is the machine-readable record of one command or
experiment invocation: what ran (command + arguments), when and for how
long, what it produced (command-specific results), and the metrics
accumulated along the way.  The CLI's ``--metrics-out`` writes one of
these per invocation; campaigns embed per-workload sub-records.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from .metrics import MetricsRegistry

#: Manifest schema version — bump on breaking layout changes.
MANIFEST_VERSION = 1


def _utc_iso(epoch_seconds: float) -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(epoch_seconds))


@dataclass
class RunManifest:
    """One invocation's structured record."""

    command: str
    arguments: Dict[str, Any] = field(default_factory=dict)
    started_epoch: float = field(default_factory=time.time)
    finished_epoch: Optional[float] = None
    results: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    _clock_start: float = field(default_factory=time.perf_counter)

    @classmethod
    def begin(cls, command: str, **arguments: Any) -> "RunManifest":
        """Start a manifest for one command invocation."""
        return cls(command=command, arguments=dict(arguments))

    def record(self, **results: Any) -> "RunManifest":
        """Attach command-specific result fields (merged, not replaced)."""
        self.results.update(results)
        return self

    def finish(
        self, registry: Optional[MetricsRegistry] = None, **results: Any
    ) -> "RunManifest":
        """Close the manifest: stamp the end time, fold in metrics."""
        self.finished_epoch = time.time()
        self.results.update(results)
        if registry is not None:
            self.metrics = registry.snapshot()
        return self

    @property
    def duration_seconds(self) -> float:
        if self.finished_epoch is None:
            return 0.0
        return time.perf_counter() - self._clock_start

    def to_dict(self) -> Dict[str, Any]:
        duration = (
            round(time.perf_counter() - self._clock_start, 6)
            if self.finished_epoch is not None
            else None
        )
        return {
            "manifest_version": MANIFEST_VERSION,
            "command": self.command,
            "arguments": self.arguments,
            "started_at": _utc_iso(self.started_epoch),
            "finished_at": (
                _utc_iso(self.finished_epoch)
                if self.finished_epoch is not None
                else None
            ),
            "duration_seconds": duration,
            "results": self.results,
            "metrics": self.metrics,
        }
