"""JSONL telemetry and trace export.

Output conventions:

* paths ending in ``.jsonl`` get one JSON object per line, *appended* —
  the accumulating-log style a fleet of runs writes into one file;
* any other path gets a single pretty-printed JSON document,
  overwritten — the one-shot artifact style.

Both forms carry the same :class:`~repro.observability.manifest.RunManifest`
payload, so ``--metrics-out run.json`` and ``--metrics-out runs.jsonl``
differ only in framing.
"""

from __future__ import annotations

import json
from typing import IO, Any, Dict, Iterable, Optional, Union

from .manifest import RunManifest
from .metrics import MetricsRegistry


class JsonlWriter:
    """Append-mode JSONL sink (one record per line)."""

    def __init__(self, path: str) -> None:
        self._path = path
        self._count = 0

    @property
    def records_written(self) -> int:
        return self._count

    def write(self, record: Dict[str, Any]) -> None:
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
        self._count += 1

    def write_all(self, records: Iterable[Dict[str, Any]]) -> int:
        with open(self._path, "a", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
                self._count += 1
        return self._count


def write_manifest(
    manifest: Union[RunManifest, Dict[str, Any]], path: str
) -> Dict[str, Any]:
    """Write a manifest to ``path`` (JSONL append or JSON overwrite).

    Returns the serialized payload for callers that also want it.
    """
    payload = (
        manifest.to_dict() if isinstance(manifest, RunManifest) else manifest
    )
    if path.endswith(".jsonl"):
        JsonlWriter(path).write(payload)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return payload


def write_metrics_jsonl(
    registry: MetricsRegistry, path: str, label: Optional[str] = None
) -> int:
    """Dump a registry as JSONL records: one per counter/timer/span."""
    snapshot = registry.snapshot()
    records = []
    for name, value in snapshot["counters"].items():
        records.append({"kind": "counter", "name": name, "value": value})
    for name, data in snapshot["timers"].items():
        records.append({"kind": "timer", "name": name, **data})
    for span in snapshot["spans"]:
        records.append({"kind": "span", **span})
    if label is not None:
        for record in records:
            record["label"] = label
    return JsonlWriter(path).write_all(records)


def export_trace(events: Iterable[Any], path_or_stream: Union[str, IO[str]]) -> int:
    """Write a committed control-flow event trace as JSONL.

    Accepts a path or an open text stream; uses the same format as
    :mod:`repro.runtime.replay`, so exported traces feed straight into
    ``repro.cli replay``.  Returns the event count.
    """
    from ..runtime.replay import dump_trace

    if isinstance(path_or_stream, str):
        with open(path_or_stream, "w", encoding="utf-8") as handle:
            return dump_trace(events, handle)
    return dump_trace(events, path_or_stream)
