"""Prometheus text-exposition rendering for a :class:`MetricsRegistry`.

Implements the subset of the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ this
repo's metric vocabulary needs:

* counters  → ``<prefix>_<name>_total`` (``# TYPE ... counter``);
* gauges    → ``<prefix>_<name>`` (``# TYPE ... gauge``);
* timers    → ``<prefix>_<name>_seconds`` summaries (``_count`` /
  ``_sum``, no quantiles — the registry keeps aggregates, not samples);
* histograms→ full ``_bucket{le="..."}`` / ``_sum`` / ``_count``
  families with cumulative bucket counts and the mandatory ``+Inf``
  bucket.

Everything renders from a plain ``snapshot()`` dict, so the daemon's
``metrics`` op and the CLI's ``--prom-out`` share one code path and a
scrape of either is identical for identical registries.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Union

from .metrics import MetricsRegistry

#: Default metric-name prefix (the Prometheus "namespace").
DEFAULT_PREFIX = "repro"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str) -> str:
    """A legal Prometheus metric name: ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    cleaned = _INVALID.sub("_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned[0]):
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: Union[int, float]) -> str:
    if isinstance(value, int):
        return str(value)
    if value == float("inf"):
        return "+Inf"
    return repr(round(value, 9))


def _format_bound(bound: float) -> str:
    if bound == float("inf"):
        return "+Inf"
    return repr(round(bound, 12))


def render_prometheus(
    registry_or_snapshot: Union[MetricsRegistry, Dict[str, Any]],
    prefix: str = DEFAULT_PREFIX,
) -> str:
    """The registry as one Prometheus text-exposition document."""
    snapshot = (
        registry_or_snapshot.snapshot()
        if isinstance(registry_or_snapshot, MetricsRegistry)
        else registry_or_snapshot
    )
    lines: List[str] = []

    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")

    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    for name, data in sorted(snapshot.get("timers", {}).items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}_seconds"
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_format_value(data.get('count', 0))}")
        lines.append(
            f"{metric}_sum {_format_value(float(data.get('total_seconds', 0.0)))}"
        )

    for name, data in sorted(snapshot.get("histograms", {}).items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} histogram")
        running = 0
        counts = data.get("counts", [])
        bounds = data.get("bounds", [])
        for bound, bucket in zip(bounds, counts):
            running += bucket
            lines.append(
                f'{metric}_bucket{{le="{_format_bound(bound)}"}} {running}'
            )
        total = running + (counts[-1] if counts else 0)
        lines.append(f'{metric}_bucket{{le="+Inf"}} {total}')
        lines.append(f"{metric}_sum {_format_value(float(data.get('sum', 0.0)))}")
        lines.append(f"{metric}_count {_format_value(data.get('count', 0))}")

    return "\n".join(lines) + "\n" if lines else ""


def write_prometheus(
    registry_or_snapshot: Union[MetricsRegistry, Dict[str, Any]],
    path: str,
    prefix: str = DEFAULT_PREFIX,
) -> str:
    """Render and write; returns the rendered text."""
    text = render_prometheus(registry_or_snapshot, prefix)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text


#: Sample-line grammar for validation (metric name, optional labels,
#: value) — used by the CI artifact validator.
SAMPLE_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? "
    r"(\+Inf|-Inf|NaN|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$"
)


def validate_exposition(text: str) -> List[str]:
    """Structural errors in a Prometheus text document (empty = valid).

    Checks line grammar plus histogram-family consistency: cumulative
    bucket counts are non-decreasing and the ``+Inf`` bucket equals the
    family's ``_count`` sample.
    """
    errors: List[str] = []
    buckets: Dict[str, List[int]] = {}
    counts: Dict[str, int] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        if not line or line.startswith("#"):
            continue
        match = SAMPLE_LINE.match(line)
        if match is None:
            errors.append(f"line {number}: bad sample line {line!r}")
            continue
        name = line.split("{")[0].split(" ")[0]
        value = line.rsplit(" ", 1)[1]
        if name.endswith("_bucket"):
            buckets.setdefault(name[: -len("_bucket")], []).append(
                int(float(value))
            )
        elif name.endswith("_count"):
            counts[name[: -len("_count")]] = int(float(value))
    for family, series in buckets.items():
        if any(b > a for a, b in zip(series[1:], series)):
            errors.append(f"histogram {family}: buckets not cumulative")
        if family in counts and series and series[-1] != counts[family]:
            errors.append(
                f"histogram {family}: +Inf bucket {series[-1]} != "
                f"_count {counts[family]}"
            )
    return errors
