"""Hand-written lexer for the mini-C language.

Supports ``//`` line comments and ``/* ... */`` block comments, decimal
and hexadecimal integer literals, and all operators in
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenType

#: Two-character operators, checked before single-character ones.
_TWO_CHAR_OPS = {
    "<=": TokenType.LE,
    ">=": TokenType.GE,
    "==": TokenType.EQ,
    "!=": TokenType.NE,
    "&&": TokenType.AND_AND,
    "||": TokenType.OR_OR,
}

_ONE_CHAR_OPS = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "{": TokenType.LBRACE,
    "}": TokenType.RBRACE,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    "=": TokenType.ASSIGN,
    "+": TokenType.PLUS,
    "-": TokenType.MINUS,
    "*": TokenType.STAR,
    "/": TokenType.SLASH,
    "%": TokenType.PERCENT,
    "&": TokenType.AMP,
    "!": TokenType.BANG,
    "<": TokenType.LT,
    ">": TokenType.GT,
}


class Lexer:
    """Converts mini-C source text into a token stream."""

    def __init__(self, source: str, filename: str = "<source>"):
        self._source = source
        self._filename = filename
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Return the full token list, ending with an EOF token."""
        return list(self._tokens())

    # ------------------------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._column, self._filename)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index >= len(self._source):
            return ""
        return self._source[index]

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self._pos >= len(self._source):
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1

    def _skip_trivia(self) -> None:
        """Skip whitespace and comments; raise on an unterminated comment."""
        while True:
            char = self._peek()
            if char and char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._peek() not in ("", "\n"):
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self._peek() == "":
                        raise LexError("unterminated block comment", start)
                    self._advance()
                self._advance(2)
            else:
                return

    def _tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            location = self._location()
            char = self._peek()
            if char == "":
                yield Token(TokenType.EOF, "", location)
                return
            if char.isdigit():
                yield self._lex_number(location)
            elif char.isalpha() or char == "_":
                yield self._lex_ident(location)
            else:
                pair = char + self._peek(1)
                if pair in _TWO_CHAR_OPS:
                    self._advance(2)
                    yield Token(_TWO_CHAR_OPS[pair], pair, location)
                elif char in _ONE_CHAR_OPS:
                    self._advance()
                    yield Token(_ONE_CHAR_OPS[char], char, location)
                else:
                    raise LexError(f"unexpected character {char!r}", location)

    def _lex_number(self, location: SourceLocation) -> Token:
        start = self._pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if not self._is_hex(self._peek()):
                raise LexError("hex literal needs at least one digit", location)
            while self._is_hex(self._peek()):
                self._advance()
        else:
            while self._peek().isdigit():
                self._advance()
        text = self._source[start : self._pos]
        if self._peek().isalpha() or self._peek() == "_":
            raise LexError(f"invalid suffix on integer literal {text!r}", location)
        return Token(TokenType.INT_LITERAL, text, location)

    def _lex_ident(self, location: SourceLocation) -> Token:
        start = self._pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self._source[start : self._pos]
        token_type = KEYWORDS.get(text, TokenType.IDENT)
        return Token(token_type, text, location)

    @staticmethod
    def _is_hex(char: str) -> bool:
        return bool(char) and char in "0123456789abcdefABCDEF"


def tokenize(source: str, filename: str = "<source>") -> List[Token]:
    """Convenience wrapper: lex ``source`` into a token list."""
    return Lexer(source, filename).tokenize()
