"""Source-level error types shared by the lexer, parser and lowering.

Every diagnostic carries a :class:`SourceLocation` so callers (tests,
examples, workload authors) get a precise ``file:line:column`` message
instead of a bare string.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a mini-C source text (1-based line and column)."""

    line: int
    column: int
    filename: str = "<source>"

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for every error raised by the repro package."""


class SourceError(ReproError):
    """An error tied to a location in mini-C source code."""

    def __init__(self, message: str, location: SourceLocation):
        super().__init__(f"{location}: {message}")
        self.message = message
        self.location = location


class LexError(SourceError):
    """The lexer met a character sequence it cannot tokenize."""


class ParseError(SourceError):
    """The parser met a token sequence that is not valid mini-C."""


class LoweringError(SourceError):
    """AST-to-IR lowering met a construct it cannot translate."""
