"""Mini-C language front end: lexer, AST, and parser.

This package is the stand-in for the SUIF C front end the paper used.
The public entry point is :func:`parse_program`.
"""

from .ast_nodes import (
    Assign,
    BinaryOp,
    Block,
    Break,
    CallExpr,
    Continue,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    GlobalDecl,
    If,
    IndexExpr,
    IntLiteral,
    Param,
    Program,
    Return,
    Stmt,
    Type,
    TypeKind,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
)
from .errors import (
    LexError,
    LoweringError,
    ParseError,
    ReproError,
    SourceError,
    SourceLocation,
)
from .lexer import Lexer, tokenize
from .parser import Parser, parse_program
from .tokens import Token, TokenType

__all__ = [
    "Assign",
    "BinaryOp",
    "Block",
    "Break",
    "CallExpr",
    "Continue",
    "Expr",
    "ExprStmt",
    "For",
    "FunctionDef",
    "GlobalDecl",
    "If",
    "IndexExpr",
    "IntLiteral",
    "LexError",
    "Lexer",
    "LoweringError",
    "Param",
    "ParseError",
    "Parser",
    "Program",
    "ReproError",
    "Return",
    "SourceError",
    "SourceLocation",
    "Stmt",
    "Token",
    "TokenType",
    "Type",
    "TypeKind",
    "UnaryOp",
    "VarDecl",
    "VarRef",
    "While",
    "parse_program",
    "tokenize",
]
