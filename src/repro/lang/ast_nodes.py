"""AST node definitions for the mini-C language.

The AST is deliberately small: scalar ``int`` variables, one level of
pointers (``int *``), fixed-size ``int`` arrays, functions, and
structured control flow.  That is exactly the surface the paper's
compiler pass reasons about (memory-resident variables, loads/stores,
conditional branches).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .errors import SourceLocation


class TypeKind(enum.Enum):
    """The three value categories of the language."""

    INT = "int"
    POINTER = "int*"
    ARRAY = "int[]"
    VOID = "void"


@dataclass(frozen=True)
class Type:
    """A mini-C type.  Arrays carry their element count."""

    kind: TypeKind
    array_size: int = 0

    @staticmethod
    def int_() -> "Type":
        return Type(TypeKind.INT)

    @staticmethod
    def pointer() -> "Type":
        return Type(TypeKind.POINTER)

    @staticmethod
    def array(size: int) -> "Type":
        return Type(TypeKind.ARRAY, size)

    @staticmethod
    def void() -> "Type":
        return Type(TypeKind.VOID)

    def __str__(self) -> str:
        if self.kind is TypeKind.ARRAY:
            return f"int[{self.array_size}]"
        return self.kind.value


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for all expressions."""

    location: SourceLocation


@dataclass
class IntLiteral(Expr):
    value: int = 0


@dataclass
class VarRef(Expr):
    """A bare variable reference: load of a scalar, or array/pointer name."""

    name: str = ""


@dataclass
class UnaryOp(Expr):
    """``-x``, ``!x``, ``*p`` (deref read) or ``&x`` (address-of)."""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class BinaryOp(Expr):
    """Arithmetic, comparison, or short-circuit logical operation."""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class IndexExpr(Expr):
    """``base[index]`` read, where base is an array or pointer variable."""

    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class CallExpr(Expr):
    """``f(a, b, ...)`` — user function or builtin."""

    callee: str = ""
    args: List[Expr] = field(default_factory=list)


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for all statements."""

    location: SourceLocation


@dataclass
class VarDecl(Stmt):
    """``int x = e;`` / ``int *p;`` / ``int buf[16];``"""

    name: str = ""
    var_type: Type = None  # type: ignore[assignment]
    init: Optional[Expr] = None


@dataclass
class Assign(Stmt):
    """``lvalue = expr;`` — lvalue is VarRef, UnaryOp('*') or IndexExpr."""

    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class ExprStmt(Stmt):
    """An expression evaluated for side effects (usually a call)."""

    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Block(Stmt):
    statements: List[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    then_body: Block = None  # type: ignore[assignment]
    else_body: Optional[Block] = None


@dataclass
class While(Stmt):
    condition: Expr = None  # type: ignore[assignment]
    body: Block = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    """``for (init; cond; step) body`` — each header slot optional."""

    init: Optional[Stmt] = None
    condition: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Block = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------


@dataclass
class Param:
    """A function parameter (``int x`` or ``int *p``)."""

    name: str
    param_type: Type
    location: SourceLocation


@dataclass
class FunctionDef:
    """A function definition with its body."""

    name: str
    return_type: Type
    params: List[Param]
    body: Block
    location: SourceLocation


@dataclass
class GlobalDecl:
    """A file-scope variable (scalar with optional constant init, or array)."""

    name: str
    var_type: Type
    init: Optional[int]
    location: SourceLocation


@dataclass
class Program:
    """A whole translation unit: globals plus function definitions."""

    globals: List[GlobalDecl] = field(default_factory=list)
    functions: List[FunctionDef] = field(default_factory=list)

    def function(self, name: str) -> FunctionDef:
        """Look up a function by name; raise ``KeyError`` if missing."""
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(f"no function named {name!r}")
