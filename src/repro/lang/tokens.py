"""Token definitions for the mini-C language.

The language is the C subset the paper's analysis operates on: integer
scalars, one level of pointers, fixed-size integer arrays, functions,
structured control flow.  Everything the IPDS compiler pass needs —
loads, stores, conditional branches over memory-resident variables —
is expressible here.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenType(enum.Enum):
    """All terminal symbols of the mini-C grammar."""

    # Literals and identifiers.
    INT_LITERAL = "int_literal"
    IDENT = "ident"

    # Keywords.
    KW_INT = "int"
    KW_VOID = "void"
    KW_IF = "if"
    KW_ELSE = "else"
    KW_WHILE = "while"
    KW_FOR = "for"
    KW_RETURN = "return"
    KW_BREAK = "break"
    KW_CONTINUE = "continue"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"

    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    BANG = "!"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    EQ = "=="
    NE = "!="
    AND_AND = "&&"
    OR_OR = "||"

    # End of input.
    EOF = "eof"


#: Reserved words, mapped to their token types.
KEYWORDS = {
    "int": TokenType.KW_INT,
    "void": TokenType.KW_VOID,
    "if": TokenType.KW_IF,
    "else": TokenType.KW_ELSE,
    "while": TokenType.KW_WHILE,
    "for": TokenType.KW_FOR,
    "return": TokenType.KW_RETURN,
    "break": TokenType.KW_BREAK,
    "continue": TokenType.KW_CONTINUE,
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its type, raw text and source location."""

    type: TokenType
    text: str
    location: SourceLocation

    @property
    def int_value(self) -> int:
        """The numeric value of an ``INT_LITERAL`` token."""
        if self.type is not TokenType.INT_LITERAL:
            raise ValueError(f"token {self.type} has no integer value")
        return int(self.text, 0)

    def __str__(self) -> str:
        return f"{self.type.name}({self.text!r})@{self.location}"
