"""Recursive-descent parser for the mini-C language.

Grammar (EBNF, informal)::

    program     := (global_decl | function_def)*
    global_decl := "int" ("*")? IDENT ("[" INT "]")? ("=" INT)? ";"
    function    := ("int" | "void") IDENT "(" params? ")" block
    params      := param ("," param)*
    param       := "int" ("*")? IDENT
    block       := "{" stmt* "}"
    stmt        := var_decl | if | while | for | return | break ";"
                 | continue ";" | block | simple_stmt ";"
    simple_stmt := lvalue "=" expr | expr
    expr        := or_expr
    or_expr     := and_expr ("||" and_expr)*
    and_expr    := cmp_expr ("&&" cmp_expr)*
    cmp_expr    := add_expr (("<"|"<="|">"|">="|"=="|"!=") add_expr)?
    add_expr    := mul_expr (("+"|"-") mul_expr)*
    mul_expr    := unary (("*"|"/"|"%") unary)*
    unary       := ("-"|"!"|"*"|"&") unary | postfix
    postfix     := primary ("[" expr "]")*
    primary     := INT | IDENT | IDENT "(" args? ")" | "(" expr ")"

Comparison is non-associative (``a < b < c`` is rejected), matching how
the IPDS analysis consumes single relational branch conditions.
"""

from __future__ import annotations

from typing import List, Optional

from .ast_nodes import (
    Assign,
    BinaryOp,
    Block,
    Break,
    CallExpr,
    Continue,
    Expr,
    ExprStmt,
    For,
    FunctionDef,
    GlobalDecl,
    If,
    IndexExpr,
    IntLiteral,
    Param,
    Program,
    Return,
    Stmt,
    Type,
    UnaryOp,
    VarDecl,
    VarRef,
    While,
)
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenType

_CMP_OPS = {
    TokenType.LT: "<",
    TokenType.LE: "<=",
    TokenType.GT: ">",
    TokenType.GE: ">=",
    TokenType.EQ: "==",
    TokenType.NE: "!=",
}

_ADD_OPS = {TokenType.PLUS: "+", TokenType.MINUS: "-"}
_MUL_OPS = {TokenType.STAR: "*", TokenType.SLASH: "/", TokenType.PERCENT: "%"}


class Parser:
    """Parses a token stream into a :class:`Program`."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _check(self, token_type: TokenType) -> bool:
        return self._peek().type is token_type

    def _match(self, token_type: TokenType) -> Optional[Token]:
        if self._check(token_type):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, what: str) -> Token:
        if self._check(token_type):
            return self._advance()
        actual = self._peek()
        raise ParseError(
            f"expected {what}, found {actual.type.name}({actual.text!r})",
            actual.location,
        )

    # -- top level ------------------------------------------------------

    def parse_program(self) -> Program:
        """Parse the whole translation unit."""
        program = Program()
        while not self._check(TokenType.EOF):
            if self._is_function_def():
                program.functions.append(self._parse_function())
            else:
                program.globals.append(self._parse_global())
        return program

    def _is_function_def(self) -> bool:
        """Disambiguate ``int f(...)`` from ``int g;`` / ``int g = 1;``."""
        if self._check(TokenType.KW_VOID):
            return True
        if not self._check(TokenType.KW_INT):
            token = self._peek()
            raise ParseError(
                f"expected declaration, found {token.type.name}({token.text!r})",
                token.location,
            )
        offset = 1
        if self._peek(offset).type is TokenType.STAR:
            offset += 1
        if self._peek(offset).type is not TokenType.IDENT:
            return False
        return self._peek(offset + 1).type is TokenType.LPAREN

    def _parse_global(self) -> GlobalDecl:
        start = self._expect(TokenType.KW_INT, "'int'")
        var_type = Type.int_()
        if self._match(TokenType.STAR):
            var_type = Type.pointer()
        name = self._expect(TokenType.IDENT, "global name")
        if self._match(TokenType.LBRACKET):
            size = self._expect(TokenType.INT_LITERAL, "array size")
            self._expect(TokenType.RBRACKET, "']'")
            var_type = Type.array(size.int_value)
        init: Optional[int] = None
        if self._match(TokenType.ASSIGN):
            negative = bool(self._match(TokenType.MINUS))
            literal = self._expect(TokenType.INT_LITERAL, "constant initializer")
            init = -literal.int_value if negative else literal.int_value
        self._expect(TokenType.SEMICOLON, "';'")
        return GlobalDecl(name.text, var_type, init, start.location)

    def _parse_function(self) -> FunctionDef:
        if self._match(TokenType.KW_VOID):
            return_type = Type.void()
        else:
            self._expect(TokenType.KW_INT, "'int' or 'void'")
            return_type = Type.int_()
        name = self._expect(TokenType.IDENT, "function name")
        self._expect(TokenType.LPAREN, "'('")
        params: List[Param] = []
        if not self._check(TokenType.RPAREN):
            params.append(self._parse_param())
            while self._match(TokenType.COMMA):
                params.append(self._parse_param())
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_block()
        return FunctionDef(name.text, return_type, params, body, name.location)

    def _parse_param(self) -> Param:
        self._expect(TokenType.KW_INT, "'int' in parameter")
        param_type = Type.pointer() if self._match(TokenType.STAR) else Type.int_()
        name = self._expect(TokenType.IDENT, "parameter name")
        return Param(name.text, param_type, name.location)

    # -- statements -----------------------------------------------------

    def _parse_block(self) -> Block:
        open_brace = self._expect(TokenType.LBRACE, "'{'")
        statements: List[Stmt] = []
        while not self._check(TokenType.RBRACE):
            if self._check(TokenType.EOF):
                raise ParseError("unterminated block", open_brace.location)
            statements.append(self._parse_statement())
        self._expect(TokenType.RBRACE, "'}'")
        return Block(open_brace.location, statements)

    def _parse_statement(self) -> Stmt:
        token = self._peek()
        if token.type is TokenType.KW_INT:
            return self._parse_var_decl()
        if token.type is TokenType.KW_IF:
            return self._parse_if()
        if token.type is TokenType.KW_WHILE:
            return self._parse_while()
        if token.type is TokenType.KW_FOR:
            return self._parse_for()
        if token.type is TokenType.KW_RETURN:
            self._advance()
            value = None
            if not self._check(TokenType.SEMICOLON):
                value = self._parse_expr()
            self._expect(TokenType.SEMICOLON, "';'")
            return Return(token.location, value)
        if token.type is TokenType.KW_BREAK:
            self._advance()
            self._expect(TokenType.SEMICOLON, "';'")
            return Break(token.location)
        if token.type is TokenType.KW_CONTINUE:
            self._advance()
            self._expect(TokenType.SEMICOLON, "';'")
            return Continue(token.location)
        if token.type is TokenType.LBRACE:
            return self._parse_block()
        stmt = self._parse_simple_statement()
        self._expect(TokenType.SEMICOLON, "';'")
        return stmt

    def _parse_var_decl(self) -> VarDecl:
        start = self._expect(TokenType.KW_INT, "'int'")
        var_type = Type.pointer() if self._match(TokenType.STAR) else Type.int_()
        name = self._expect(TokenType.IDENT, "variable name")
        if self._match(TokenType.LBRACKET):
            size = self._expect(TokenType.INT_LITERAL, "array size")
            self._expect(TokenType.RBRACKET, "']'")
            var_type = Type.array(size.int_value)
        init: Optional[Expr] = None
        if self._match(TokenType.ASSIGN):
            if var_type.kind.name == "ARRAY":
                raise ParseError("array initializers are not supported", start.location)
            init = self._parse_expr()
        self._expect(TokenType.SEMICOLON, "';'")
        return VarDecl(start.location, name.text, var_type, init)

    def _parse_if(self) -> If:
        start = self._expect(TokenType.KW_IF, "'if'")
        self._expect(TokenType.LPAREN, "'('")
        condition = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        then_body = self._parse_statement_as_block()
        else_body: Optional[Block] = None
        if self._match(TokenType.KW_ELSE):
            else_body = self._parse_statement_as_block()
        return If(start.location, condition, then_body, else_body)

    def _parse_while(self) -> While:
        start = self._expect(TokenType.KW_WHILE, "'while'")
        self._expect(TokenType.LPAREN, "'('")
        condition = self._parse_expr()
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_statement_as_block()
        return While(start.location, condition, body)

    def _parse_for(self) -> For:
        start = self._expect(TokenType.KW_FOR, "'for'")
        self._expect(TokenType.LPAREN, "'('")
        init: Optional[Stmt] = None
        if not self._check(TokenType.SEMICOLON):
            if self._check(TokenType.KW_INT):
                init = self._parse_var_decl()
            else:
                init = self._parse_simple_statement()
                self._expect(TokenType.SEMICOLON, "';'")
        else:
            self._advance()
        condition: Optional[Expr] = None
        if not self._check(TokenType.SEMICOLON):
            condition = self._parse_expr()
        self._expect(TokenType.SEMICOLON, "';'")
        step: Optional[Stmt] = None
        if not self._check(TokenType.RPAREN):
            step = self._parse_simple_statement()
        self._expect(TokenType.RPAREN, "')'")
        body = self._parse_statement_as_block()
        return For(start.location, init, condition, step, body)

    def _parse_statement_as_block(self) -> Block:
        """Wrap a single statement in a block so bodies are uniform."""
        stmt = self._parse_statement()
        if isinstance(stmt, Block):
            return stmt
        return Block(stmt.location, [stmt])

    def _parse_simple_statement(self) -> Stmt:
        """Assignment or expression statement (no trailing ';' consumed)."""
        expr = self._parse_expr()
        if self._match(TokenType.ASSIGN):
            self._require_lvalue(expr)
            value = self._parse_expr()
            return Assign(expr.location, expr, value)
        return ExprStmt(expr.location, expr)

    @staticmethod
    def _require_lvalue(expr: Expr) -> None:
        if isinstance(expr, (VarRef, IndexExpr)):
            return
        if isinstance(expr, UnaryOp) and expr.op == "*":
            return
        raise ParseError("assignment target is not an lvalue", expr.location)

    # -- expressions ----------------------------------------------------

    def _parse_expr(self) -> Expr:
        return self._parse_or()

    def _parse_or(self) -> Expr:
        expr = self._parse_and()
        while self._check(TokenType.OR_OR):
            op = self._advance()
            right = self._parse_and()
            expr = BinaryOp(op.location, "||", expr, right)
        return expr

    def _parse_and(self) -> Expr:
        expr = self._parse_cmp()
        while self._check(TokenType.AND_AND):
            op = self._advance()
            right = self._parse_cmp()
            expr = BinaryOp(op.location, "&&", expr, right)
        return expr

    def _parse_cmp(self) -> Expr:
        expr = self._parse_add()
        if self._peek().type in _CMP_OPS:
            op = self._advance()
            right = self._parse_add()
            expr = BinaryOp(op.location, _CMP_OPS[op.type], expr, right)
            if self._peek().type in _CMP_OPS:
                raise ParseError(
                    "chained comparisons are not allowed; parenthesize",
                    self._peek().location,
                )
        return expr

    def _parse_add(self) -> Expr:
        expr = self._parse_mul()
        while self._peek().type in _ADD_OPS:
            op = self._advance()
            right = self._parse_mul()
            expr = BinaryOp(op.location, _ADD_OPS[op.type], expr, right)
        return expr

    def _parse_mul(self) -> Expr:
        expr = self._parse_unary()
        while self._peek().type in _MUL_OPS:
            op = self._advance()
            right = self._parse_unary()
            expr = BinaryOp(op.location, _MUL_OPS[op.type], expr, right)
        return expr

    def _parse_unary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.MINUS:
            self._advance()
            return UnaryOp(token.location, "-", self._parse_unary())
        if token.type is TokenType.BANG:
            self._advance()
            return UnaryOp(token.location, "!", self._parse_unary())
        if token.type is TokenType.STAR:
            self._advance()
            return UnaryOp(token.location, "*", self._parse_unary())
        if token.type is TokenType.AMP:
            self._advance()
            operand = self._parse_unary()
            if not isinstance(operand, (VarRef, IndexExpr)):
                raise ParseError(
                    "'&' needs a variable or array element", token.location
                )
            return UnaryOp(token.location, "&", operand)
        return self._parse_postfix()

    def _parse_postfix(self) -> Expr:
        expr = self._parse_primary()
        while self._check(TokenType.LBRACKET):
            bracket = self._advance()
            index = self._parse_expr()
            self._expect(TokenType.RBRACKET, "']'")
            expr = IndexExpr(bracket.location, expr, index)
        return expr

    def _parse_primary(self) -> Expr:
        token = self._peek()
        if token.type is TokenType.INT_LITERAL:
            self._advance()
            return IntLiteral(token.location, token.int_value)
        if token.type is TokenType.IDENT:
            self._advance()
            if self._match(TokenType.LPAREN):
                args: List[Expr] = []
                if not self._check(TokenType.RPAREN):
                    args.append(self._parse_expr())
                    while self._match(TokenType.COMMA):
                        args.append(self._parse_expr())
                self._expect(TokenType.RPAREN, "')'")
                return CallExpr(token.location, token.text, args)
            return VarRef(token.location, token.text)
        if token.type is TokenType.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenType.RPAREN, "')'")
            return expr
        raise ParseError(
            f"expected expression, found {token.type.name}({token.text!r})",
            token.location,
        )


def parse_program(source: str, filename: str = "<source>") -> Program:
    """Lex and parse mini-C ``source`` into a :class:`Program`."""
    return Parser(tokenize(source, filename)).parse_program()
