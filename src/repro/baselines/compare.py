"""Head-to-head: IPDS vs. syscall-granularity n-gram detection.

For one workload:

1. train the n-gram detector on ``train_sessions`` clean sessions;
2. measure its **false-positive rate** on fresh clean sessions (IPDS
   is zero-FP by construction, so any baseline FP is the contrast the
   paper draws);
3. replay the same seeded attack recipe the Figure 7 campaign uses and
   measure both detectors on identical tampered executions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..attacks.campaign import TAMPER_VALUES
from ..interp.interpreter import Interpreter, TamperSpec
from ..ir.instructions import Call, Instruction
from ..pipeline import ProtectedProgram, compile_program, observed_run
from ..runtime.observer import ExecutionObserver
from ..workloads.registry import Workload


class SyscallTraceObserver(ExecutionObserver):
    """Captures the coarse syscall-granularity view of one execution.

    Records every call — builtin "system calls" and user functions
    alike — as a call-site-aware symbol (Feng et al. [10] style: the
    same syscall from a different program point is a different
    symbol).  Rides the observer bus's instruction stream, so it can
    share a single execution with the IPDS and timing consumers.
    """

    def __init__(self) -> None:
        self.symbols: List[str] = []

    def on_instruction(
        self, instruction: Instruction, touched: Optional[int]
    ) -> None:
        if isinstance(instruction, Call):
            self.symbols.append(
                f"{instruction.callee}@{instruction.address:x}"
            )

    def on_instruction_batch(
        self,
        instructions: Sequence[Instruction],
        touched: Sequence[Optional[int]],
        count: int,
    ) -> None:
        # Batched delivery: scan the flat buffer for calls in one call
        # frame instead of paying a Python call per instruction.
        append = self.symbols.append
        for index in range(count):
            instruction = instructions[index]
            if instruction.__class__ is Call:
                append(f"{instruction.callee}@{instruction.address:x}")


def capture_trace(
    program: ProtectedProgram,
    inputs: Sequence[int],
    tamper: Optional[TamperSpec] = None,
    step_limit: int = 500_000,
) -> Tuple[List[str], List[Tuple[int, bool]], bool]:
    """Run once; returns (syscall trace, branch trace, ipds detected).

    Single-pass: the IPDS checker and the n-gram syscall capture are
    two observers of the same execution.
    """
    syscalls = SyscallTraceObserver()
    ipds = program.new_ipds()
    result = observed_run(
        program,
        observers=[ipds, syscalls],
        inputs=inputs,
        tamper=tamper,
        step_limit=step_limit,
    )
    return syscalls.symbols, result.branch_trace, ipds.detected


@dataclass
class ComparisonResult:
    """Outcome of one workload's head-to-head."""

    workload: str
    ngram_n: int
    profile_size: int
    clean_sessions_tested: int
    ngram_false_positives: int
    attacks: int
    changed: int
    ipds_detected: int
    ngram_detected: int

    @property
    def ngram_fp_rate(self) -> float:
        if not self.clean_sessions_tested:
            return 0.0
        return 100.0 * self.ngram_false_positives / self.clean_sessions_tested

    @property
    def ipds_detection_of_changed(self) -> float:
        return 100.0 * self.ipds_detected / self.changed if self.changed else 0.0

    @property
    def ngram_detection_of_changed(self) -> float:
        return 100.0 * self.ngram_detected / self.changed if self.changed else 0.0


def compare_detectors(
    workload: Workload,
    attacks: int = 50,
    train_sessions: int = 40,
    test_sessions: int = 40,
    n: int = 5,
    program: Optional[ProtectedProgram] = None,
    step_limit: int = 500_000,
) -> ComparisonResult:
    """Run the full head-to-head for one workload."""
    from .ngram import NGramDetector

    if program is None:
        program = compile_program(workload.source, workload.name)
    detector = NGramDetector(n=n)

    for index in range(train_sessions):
        rng = random.Random(f"train:{workload.name}:{index}")
        trace, _, _ = capture_trace(
            program, workload.make_inputs(rng), step_limit=step_limit
        )
        detector.train(trace)

    false_positives = 0
    for index in range(test_sessions):
        rng = random.Random(f"test:{workload.name}:{index}")
        trace, _, ipds_detected = capture_trace(
            program, workload.make_inputs(rng), step_limit=step_limit
        )
        assert not ipds_detected, "IPDS false positive (impossible)"
        if detector.detects(trace):
            false_positives += 1

    changed = ipds_hits = ngram_hits = 0
    for index in range(attacks):
        rng = random.Random(f"cmp:{workload.name}:{index}")
        inputs = workload.make_inputs(rng)
        clean_sys, clean_branches, _ = capture_trace(
            program, inputs, step_limit=step_limit
        )
        trigger = rng.randint(
            workload.min_trigger_read,
            max(workload.min_trigger_read, len(inputs)),
        )
        probe = Interpreter(
            program.module, inputs=inputs,
            probe=("read", trigger), step_limit=step_limit,
        )
        probe.run()
        candidates = list(probe.probe_slots)
        if workload.vuln_kind == "fmt" or not candidates:
            candidates.extend(probe.memory.global_slots())
        address, _, _ = rng.choice(candidates)
        value = rng.choice(TAMPER_VALUES)
        attacked_sys, attacked_branches, ipds_detected = capture_trace(
            program,
            inputs,
            tamper=TamperSpec("read", trigger, address, value),
            step_limit=step_limit,
        )
        if attacked_branches != clean_branches:
            changed += 1
            ipds_hits += int(ipds_detected)
            ngram_hits += int(detector.detects(attacked_sys))

    return ComparisonResult(
        workload=workload.name,
        ngram_n=n,
        profile_size=detector.profile_size,
        clean_sessions_tested=test_sessions,
        ngram_false_positives=false_positives,
        attacks=attacks,
        changed=changed,
        ipds_detected=ipds_hits,
        ngram_detected=ngram_hits,
    )
