"""Baseline detectors for comparison (related-work §7)."""

from .compare import (
    ComparisonResult,
    SyscallTraceObserver,
    capture_trace,
    compare_detectors,
)
from .ngram import NGramDetector, PAD

__all__ = [
    "ComparisonResult",
    "NGramDetector",
    "PAD",
    "SyscallTraceObserver",
    "capture_trace",
    "compare_detectors",
]
