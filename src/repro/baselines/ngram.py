"""System-call-granularity anomaly detection (the classic baseline).

Forrest et al. [7] established that a process's system-call trace
characterizes its normal behaviour: slide a window of length *n* over
the trace, record every window seen during training, and flag any
unseen window at detection time.  The paper positions IPDS against this
family: branch-granularity monitoring is orders of magnitude finer than
syscall granularity, and IPDS needs no training (so it cannot have
training-coverage false positives).

Our observable "system calls" are the builtin I/O calls (``read_int``,
``emit``) plus user-function entries — the call-stack-augmented flavour
of [10], which is *more* information than pure syscall traces, making
the comparison conservative in the baseline's favour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Set, Tuple

#: Padding symbol for windows at the start of a trace.
PAD = "<start>"


@dataclass
class NGramDetector:
    """Sliding-window (stide-style) anomaly detector."""

    n: int = 5
    _known: Set[Tuple[str, ...]] = field(default_factory=set)
    trained_traces: int = 0

    def _windows(self, trace: Sequence[str]):
        padded = [PAD] * (self.n - 1) + list(trace)
        for i in range(len(trace)):
            yield tuple(padded[i : i + self.n])

    def train(self, trace: Sequence[str]) -> None:
        """Record every window of a known-good trace."""
        self._known.update(self._windows(trace))
        self.trained_traces += 1

    def mismatches(self, trace: Sequence[str]) -> int:
        """Number of windows never seen in training."""
        return sum(
            1 for window in self._windows(trace) if window not in self._known
        )

    def detects(self, trace: Sequence[str]) -> bool:
        """Alarm policy: any unseen window is an anomaly."""
        return self.mismatches(trace) > 0

    @property
    def profile_size(self) -> int:
        """Number of distinct windows in the normal profile."""
        return len(self._known)
