"""Concrete data-memory layout for interpreted programs.

The paper's attacks tamper *memory addresses* (a stack slot hit by a
buffer overflow, an arbitrary location via a format string).  To make
those attacks meaningful, every variable gets a concrete word address:

* globals sit at ``GLOBAL_BASE`` upward, in declaration order;
* each function activation gets a frame at ``STACK_BASE`` plus the sum
  of its callers' frame sizes (a downward-growing stack flipped upward
  for simplicity — the geometry is irrelevant to the experiments, the
  *addressability* is what matters);
* arrays occupy ``size`` consecutive words.

Memory is a word-addressed flat store; unwritten words read 0.  There
is deliberately no bounds enforcement — a tampered pointer or index
lands wherever it lands, exactly like the unprotected hardware the
paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir.function import IRFunction, IRModule
from ..ir.instructions import Variable

#: First word address of the globals segment.
GLOBAL_BASE = 0x0000_1000
#: First word address of the stack segment.
STACK_BASE = 0x0010_0000


@dataclass
class FrameLayout:
    """Frame-relative offsets of one function's variables."""

    function_name: str
    offsets: Dict[Variable, int]
    size: int


def layout_frame(fn: IRFunction) -> FrameLayout:
    """Assign frame offsets to a function's parameters and locals."""
    offsets: Dict[Variable, int] = {}
    cursor = 0
    for var in fn.frame_variables:
        offsets[var] = cursor
        cursor += var.size
    return FrameLayout(fn.name, offsets, cursor)


class MemoryMap:
    """Address assignment plus the flat word store."""

    def __init__(self, module: IRModule):
        self._module = module
        self.global_addresses: Dict[Variable, int] = {}
        cursor = GLOBAL_BASE
        for var in module.globals:
            self.global_addresses[var] = cursor
            cursor += var.size
        self.global_end = cursor
        self.frame_layouts: Dict[str, FrameLayout] = {
            fn.name: layout_frame(fn) for fn in module.functions
        }
        # Flattened local-offset index: first owning frame wins, in
        # declaration order, so ``address_of`` resolves locals with one
        # dict probe instead of a per-access linear scan over every
        # frame layout.
        self._local_offsets: Dict[Variable, int] = {}
        for layout in self.frame_layouts.values():
            for var, offset in layout.offsets.items():
                if var not in self._local_offsets:
                    self._local_offsets[var] = offset
        self.words: Dict[int, int] = {}
        for var, value in module.global_inits.items():
            self.words[self.global_addresses[var]] = value

    # -- addressing -----------------------------------------------------

    def address_of(
        self, var: Variable, frame_base: Optional[int]
    ) -> int:
        """Address of a variable; locals need the activation's base."""
        address = self.global_addresses.get(var)
        if address is not None:
            return address
        if frame_base is None:
            raise KeyError(f"no frame base for local {var}")
        offset = self._local_offsets.get(var)
        if offset is None:
            raise KeyError(f"variable {var} has no frame")
        return frame_base + offset

    def frame_size(self, function_name: str) -> int:
        return self.frame_layouts[function_name].size

    # -- access ------------------------------------------------------------

    def read(self, address: int) -> int:
        return self.words.get(address, 0)

    def write(self, address: int, value: int) -> None:
        self.words[address] = value

    # -- attack-surface enumeration ------------------------------------------

    def live_stack_slots(
        self, activations: List[Tuple[str, int]]
    ) -> List[Tuple[int, str, str]]:
        """Every addressable word of the live stack.

        ``activations`` is a list of ``(function_name, frame_base)``
        from outermost to innermost.  Returns ``(address, function,
        variable_name)`` triples — the candidate targets of a stack
        buffer overflow.
        """
        slots: List[Tuple[int, str, str]] = []
        for function_name, base in activations:
            layout = self.frame_layouts[function_name]
            for var, offset in layout.offsets.items():
                for word in range(var.size):
                    slots.append((base + offset + word, function_name, var.name))
        return slots

    def global_slots(self) -> List[Tuple[int, str, str]]:
        """Every addressable word of the globals segment."""
        slots: List[Tuple[int, str, str]] = []
        for var, base in self.global_addresses.items():
            for word in range(var.size):
                slots.append((base + word, "<global>", var.name))
        return slots
