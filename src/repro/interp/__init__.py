"""Execution substrate: memory map, IR interpreter, tamper injection."""

from .interpreter import (
    EventListener,
    Interpreter,
    InterpreterError,
    RunResult,
    RunStatus,
    TamperSpec,
    run_program,
)
from .state import FrameLayout, GLOBAL_BASE, MemoryMap, STACK_BASE, layout_frame

__all__ = [
    "EventListener",
    "FrameLayout",
    "GLOBAL_BASE",
    "Interpreter",
    "InterpreterError",
    "MemoryMap",
    "RunResult",
    "RunStatus",
    "STACK_BASE",
    "TamperSpec",
    "layout_frame",
    "run_program",
]
