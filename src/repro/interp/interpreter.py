"""Deterministic IR interpreter with tamper injection.

Stand-in for the paper's Bochs-based attack testbed (§6): runs a
program on a concrete memory map, feeds committed control-flow events
to any number of observers (the IPDS, tracers, the timing model) over
a single-dispatch :class:`~repro.runtime.observer.ObserverBus`, and
can corrupt one memory word mid-run to simulate a memory-tampering
attack.  One execution can drive every consumer simultaneously — the
checker, two timing models, an n-gram capture and an audit recorder
all see the same committed stream without re-running the program.

The attack trigger mirrors the paper's methodology: the tampering fires
when the program consumes its *n*-th input (the "malicious input"
moment) or at a raw step count, and overwrites a single chosen word —
"our attack tampers only a (randomly selected) specific local stack
location rather than a continuous memory block" (§6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..ir.function import IRFunction, IRModule
from ..ir.instructions import (
    AddrOf,
    BinOp,
    Call,
    Cmp,
    CondBranch,
    Const,
    Instruction,
    Jump,
    Load,
    LoadIndirect,
    Operand,
    Reg,
    Return,
    Store,
    StoreIndirect,
    UnOp,
)
from ..lang.errors import ReproError
from ..runtime.events import BranchEvent, CallEvent, Event, ReturnEvent
from ..runtime.observer import build_bus
from .state import MemoryMap, STACK_BASE


class InterpreterError(ReproError):
    """Structural problem (bad module, missing entry), not a program fault."""


class RunStatus(enum.Enum):
    """How an execution ended."""

    OK = "ok"
    DIV_BY_ZERO = "div_by_zero"
    STEP_LIMIT = "step_limit"
    CALL_DEPTH = "call_depth"


@dataclass(frozen=True)
class TamperSpec:
    """One simulated memory-tampering attack.

    ``trigger_kind`` is ``"read"`` (fire right after the program
    consumes its ``trigger_value``-th input, 1-based — the buffer
    overflow / format-string moment) or ``"step"`` (fire after N
    executed instructions).  ``address``/``value`` say which word is
    corrupted and with what.
    """

    trigger_kind: str
    trigger_value: int
    address: int
    value: int

    def __post_init__(self) -> None:
        if self.trigger_kind not in ("read", "step"):
            raise ValueError(f"bad trigger kind {self.trigger_kind!r}")


@dataclass
class _Activation:
    function: IRFunction
    frame_base: int
    regs: Dict[Reg, int] = field(default_factory=dict)
    block_label: str = ""
    index: int = 0
    return_reg: Optional[Reg] = None
    #: The current block's instruction list, cached so the hot loop
    #: indexes a list instead of re-resolving ``function.block(label)``
    #: every step.  Kept in lockstep with ``block_label``.
    instructions: List[Instruction] = field(default_factory=list)


@dataclass
class RunResult:
    """Everything observable about one execution."""

    status: RunStatus
    steps: int
    outputs: List[int]
    branch_trace: List[Tuple[int, bool]]
    return_value: Optional[int]
    tamper_fired: bool
    reads_consumed: int
    #: Frame stack at the tamper moment, outer→inner:
    #: ``(function, block label, instruction index, frame base)`` per
    #: live activation.  ``None`` when no tampering fired.  The indices
    #: are the *resume* points — each frame's next instruction after
    #: the corruption lands (the static prover's program point Q).
    tamper_site: Optional[Tuple[Tuple[str, str, int, int], ...]] = None

    @property
    def ok(self) -> bool:
        return self.status is RunStatus.OK


#: Listener signature: receives each control-flow event as it commits.
EventListener = Callable[[Event], None]
#: Optional per-instruction listener (used by the timing model).
InstructionListener = Callable[[Instruction, Optional[int]], None]

#: Capacity of the flat instruction-event buffer (entries).  Batches
#: also flush at every basic-block / control-flow boundary, so the
#: capacity only caps straight-line runs; 512 comfortably covers the
#: longest block any workload lowers to while keeping the buffer in
#: cache.
EVENT_BUFFER_CAPACITY = 512


class Interpreter:
    """Executes one module from its entry function.

    Consumers attach through ``observers`` — objects implementing the
    :class:`~repro.runtime.observer.ExecutionObserver` protocol.  The
    legacy ``event_listeners`` / ``instruction_listener`` kwargs are
    still accepted and are wrapped onto the same bus, so every event is
    dispatched exactly once regardless of consumer style.
    """

    def __init__(
        self,
        module: IRModule,
        inputs: Sequence[int] = (),
        entry: str = "main",
        step_limit: int = 2_000_000,
        call_depth_limit: int = 256,
        tamper: Optional[TamperSpec] = None,
        event_listeners: Sequence[EventListener] = (),
        instruction_listener: Optional[InstructionListener] = None,
        trace_branches: bool = True,
        probe: Optional[Tuple[str, int]] = None,
        syscall_listener: Optional[Callable[[str, int], None]] = None,
        observers: Sequence[object] = (),
        batched_delivery: bool = True,
    ):
        if not module.finalized:
            raise InterpreterError("module must be finalized before execution")
        self._module = module
        self._entry = entry
        self._inputs = list(inputs)
        self._input_cursor = 0
        self._step_limit = step_limit
        self._call_depth_limit = call_depth_limit
        self._tamper = tamper
        self._tamper_fired = False
        self._tamper_site: Optional[
            Tuple[Tuple[str, str, int, int], ...]
        ] = None
        self._bus = build_bus(observers, event_listeners, instruction_listener)
        # Dispatch targets are resolved once per hook: None means "no
        # subscriber", so the hot paths skip both the call and the
        # event allocation.
        self._emit_call = self._bus.call_sink()
        self._emit_return = self._bus.return_sink()
        self._emit_branch = self._bus.branch_sink()
        self._emit_instruction = self._bus.instruction_sink()
        # Batched delivery: the hot loop appends committed instructions
        # into a preallocated flat buffer (two parallel lists — object
        # refs and touched addresses, no per-event allocation) and
        # flushes it through one instruction_batch_sink call at every
        # basic-block boundary and before any control-flow event, so
        # consumers see the exact per-instruction interleaving.  The
        # legacy per-instruction path stays available
        # (``batched_delivery=False``) as the differential-equivalence
        # reference.
        self._batch_sink = (
            self._bus.instruction_batch_sink() if batched_delivery else None
        )
        if self._batch_sink is not None:
            self._emit_instruction = None
            self._buffer_instructions: List[Optional[Instruction]] = (
                [None] * EVENT_BUFFER_CAPACITY
            )
            self._buffer_touched: List[Optional[int]] = (
                [None] * EVENT_BUFFER_CAPACITY
            )
        else:
            self._buffer_instructions = []
            self._buffer_touched = []
        self._buffer_count = 0
        # Coarse-grained observation channel for baseline anomaly
        # detectors: called with (callee name, call-site PC) of every
        # call — builtin "system calls" and user functions alike.  The
        # call-site PC matches the call-stack-augmented detectors of
        # Feng et al. [10].
        self._syscall_listener = syscall_listener
        self._trace_branches = trace_branches
        self.memory = MemoryMap(module)
        self._stack: List[_Activation] = []
        self._next_frame_base = STACK_BASE
        self._outputs: List[int] = []
        self._branch_trace: List[Tuple[int, bool]] = []
        self._steps = 0
        # Probe mode: like a tamper trigger, but instead of corrupting
        # memory it records the attack surface (the attacker casing the
        # program on their own machine).  (kind, value) as in TamperSpec.
        self._probe = probe
        self._probe_fired = False
        #: Live stack words at the probe moment: (address, fn, var).
        self.probe_slots: List[Tuple[int, str, str]] = []

    # -- public API -----------------------------------------------------

    def run(self) -> RunResult:
        """Execute until the entry function returns or a fault occurs."""
        entry_fn = self._module.function(self._entry)
        status, return_value = self._execute(entry_fn)
        # Deliver any instructions still buffered at exit (normal
        # return, step/depth limits, faults) before end-of-execution.
        if self._buffer_count:
            self._flush_events()
        self._bus.finish()
        return RunResult(
            status=status,
            steps=self._steps,
            outputs=self._outputs,
            branch_trace=self._branch_trace,
            return_value=return_value,
            tamper_fired=self._tamper_fired,
            reads_consumed=self._input_cursor,
            tamper_site=self._tamper_site,
        )

    def live_activations(self) -> List[Tuple[str, int]]:
        """(function, frame base) of every live frame, outer→inner."""
        return [(a.function.name, a.frame_base) for a in self._stack]

    # -- machinery ---------------------------------------------------------

    def _flush_events(self) -> None:
        """Deliver the buffered instruction events in one batch call.

        Invoked before every control-flow event (call/return/branch),
        before the syscall listener, at buffer capacity and at
        end-of-execution — so no consumer can observe an event out of
        the order the per-instruction path produced.  The count is
        cleared before dispatch so a re-entrant producer never
        re-delivers the same batch.
        """
        count = self._buffer_count
        if count:
            self._buffer_count = 0
            self._batch_sink(
                self._buffer_instructions, self._buffer_touched, count
            )

    def _push_activation(
        self, fn: IRFunction, args: Sequence[int], return_reg: Optional[Reg]
    ) -> _Activation:
        base = self._next_frame_base
        self._next_frame_base += self.memory.frame_size(fn.name)
        entry_block = fn.entry
        activation = _Activation(
            function=fn,
            frame_base=base,
            block_label=entry_block.label,
            index=0,
            return_reg=return_reg,
            instructions=entry_block.instructions,
        )
        for param, value in zip(fn.params, args):
            self.memory.write(
                self.memory.address_of(param, base), value
            )
        self._stack.append(activation)
        if self._emit_call is not None:
            if self._buffer_count:
                self._flush_events()
            self._emit_call(CallEvent(fn.name))
        return activation

    def _pop_activation(self, value: Optional[int]) -> Optional[int]:
        finished = self._stack.pop()
        self._next_frame_base = finished.frame_base
        if self._emit_return is not None:
            if self._buffer_count:
                self._flush_events()
            self._emit_return(ReturnEvent(finished.function.name))
        if self._stack and finished.return_reg is not None:
            self._stack[-1].regs[finished.return_reg] = (
                value if value is not None else 0
            )
        return value

    def _value(self, activation: _Activation, operand: Operand) -> int:
        if isinstance(operand, Reg):
            return activation.regs[operand]
        return operand

    def _maybe_probe(self, kind: str, count: int) -> None:
        if (
            self._probe is not None
            and not self._probe_fired
            and self._probe[0] == kind
            and count >= self._probe[1]
        ):
            self.probe_slots = self.memory.live_stack_slots(
                self.live_activations()
            )
            self._probe_fired = True

    def _maybe_tamper_after_read(self) -> None:
        self._maybe_probe("read", self._input_cursor)
        if (
            self._tamper is not None
            and not self._tamper_fired
            and self._tamper.trigger_kind == "read"
            and self._input_cursor >= self._tamper.trigger_value
        ):
            self.memory.write(self._tamper.address, self._tamper.value)
            self._tamper_fired = True
            self._record_tamper_site()

    def _maybe_tamper_after_step(self) -> None:
        self._maybe_probe("step", self._steps)
        if (
            self._tamper is not None
            and not self._tamper_fired
            and self._tamper.trigger_kind == "step"
            and self._steps >= self._tamper.trigger_value
        ):
            self.memory.write(self._tamper.address, self._tamper.value)
            self._tamper_fired = True
            self._record_tamper_site()

    def _record_tamper_site(self) -> None:
        """Snapshot the frame stack at the corruption moment.

        Step triggers run after ``_step`` returns, so every frame's
        ``index`` already points at its next instruction.  Read
        triggers run inside the ``Call(read_int)`` arm: the innermost
        index still names the call itself — which only writes a
        register, so treating it as the resume point is conservative
        and correct for the prover (the call is v-clean).
        """
        self._tamper_site = tuple(
            (a.function.name, a.block_label, a.index, a.frame_base)
            for a in self._stack
        )

    def _read_input(self) -> int:
        if self._input_cursor < len(self._inputs):
            value = self._inputs[self._input_cursor]
        else:
            value = 0
        self._input_cursor += 1
        self._maybe_tamper_after_read()
        return value

    # -- the main loop ----------------------------------------------------------

    def _execute(self, entry_fn: IRFunction) -> Tuple[RunStatus, Optional[int]]:
        self._push_activation(entry_fn, [], None)
        final_value: Optional[int] = None
        # Per-instruction work: hoist everything resolvable out of the
        # loop so each iteration pays local loads only.
        stack = self._stack
        step = self._step
        step_limit = self._step_limit
        depth_limit = self._call_depth_limit
        emit_instruction = self._emit_instruction
        maybe_tamper = self._maybe_tamper_after_step
        batching = self._batch_sink is not None
        buffer_instructions = self._buffer_instructions
        buffer_touched = self._buffer_touched
        flush = self._flush_events
        while stack:
            if self._steps >= step_limit:
                return RunStatus.STEP_LIMIT, None
            activation = stack[-1]
            instruction = activation.instructions[activation.index]
            self._steps += 1
            try:
                outcome = step(activation, instruction)
            except ZeroDivisionError:
                return RunStatus.DIV_BY_ZERO, None
            if batching:
                # Append into the flat buffer; _step already flushed it
                # ahead of any control-flow event this instruction
                # produced, so the committed order is preserved.
                count = self._buffer_count
                buffer_instructions[count] = instruction
                buffer_touched[count] = outcome
                count += 1
                self._buffer_count = count
                if count == EVENT_BUFFER_CAPACITY:
                    flush()
            elif emit_instruction is not None:
                emit_instruction(instruction, outcome)
            maybe_tamper()
            if not stack:
                # Entry function returned; final value captured below.
                final_value = self._final_value
            if len(stack) > depth_limit:
                return RunStatus.CALL_DEPTH, None
        return RunStatus.OK, final_value

    _final_value: Optional[int] = None

    def _step(
        self, activation: _Activation, instruction: Instruction
    ) -> Optional[int]:
        """Execute one instruction.

        Returns the data address the instruction touched (for the
        timing model's cache simulation) or None.

        Dispatch compares ``instruction.__class__`` by identity —
        cheaper than an isinstance chain, and exact because the IR
        instruction set is closed (no concrete class is subclassed).
        Arms are ordered by dynamic frequency in the workload suite.
        """
        regs = activation.regs
        cls = instruction.__class__
        touched: Optional[int] = None
        advance = True

        if cls is BinOp:
            lhs = instruction.lhs
            if lhs.__class__ is Reg:
                lhs = regs[lhs]
            rhs = instruction.rhs
            if rhs.__class__ is Reg:
                rhs = regs[rhs]
            regs[instruction.dest] = self._binop(instruction.op, lhs, rhs)
        elif cls is Const:
            regs[instruction.dest] = instruction.value
        elif cls is Cmp:
            lhs = instruction.lhs
            if lhs.__class__ is Reg:
                lhs = regs[lhs]
            rhs = instruction.rhs
            if rhs.__class__ is Reg:
                rhs = regs[rhs]
            regs[instruction.dest] = int(instruction.op.evaluate(lhs, rhs))
        elif cls is Load:
            address = self.memory.address_of(
                instruction.var, activation.frame_base
            )
            regs[instruction.dest] = self.memory.read(address)
            touched = address
        elif cls is Store:
            address = self.memory.address_of(
                instruction.var, activation.frame_base
            )
            src = instruction.src
            self.memory.write(
                address, regs[src] if src.__class__ is Reg else src
            )
            touched = address
        elif cls is CondBranch:
            lhs = regs[instruction.lhs]
            rhs = instruction.rhs
            if rhs.__class__ is Reg:
                rhs = regs[rhs]
            taken = instruction.op.evaluate(lhs, rhs)
            if self._trace_branches:
                self._branch_trace.append((instruction.address, taken))
            if self._emit_branch is not None:
                if self._buffer_count:
                    self._flush_events()
                self._emit_branch(
                    BranchEvent(
                        activation.function.name, instruction.address, taken
                    )
                )
            target = instruction.taken if taken else instruction.fallthrough
            activation.block_label = target
            activation.instructions = activation.function.block(
                target
            ).instructions
            activation.index = 0
            advance = False
        elif cls is Jump:
            target = instruction.target
            activation.block_label = target
            activation.instructions = activation.function.block(
                target
            ).instructions
            activation.index = 0
            advance = False
        elif cls is Call:
            advance = self._call(activation, instruction)
        elif cls is UnOp:
            src = instruction.src
            if src.__class__ is Reg:
                src = regs[src]
            regs[instruction.dest] = -src if instruction.op == "-" else int(src == 0)
        elif cls is AddrOf:
            regs[instruction.dest] = self.memory.address_of(
                instruction.var, activation.frame_base
            )
        elif cls is LoadIndirect:
            address = regs[instruction.addr]
            regs[instruction.dest] = self.memory.read(address)
            touched = address
        elif cls is StoreIndirect:
            address = regs[instruction.addr]
            src = instruction.src
            self.memory.write(
                address, regs[src] if src.__class__ is Reg else src
            )
            touched = address
        elif cls is Return:
            value = (
                self._value(activation, instruction.value)
                if instruction.value is not None
                else None
            )
            if len(self._stack) == 1:
                self._final_value = value
            self._pop_activation(value)
            advance = False
        else:  # pragma: no cover - defensive
            raise InterpreterError(f"unknown instruction {instruction!r}")

        if advance:
            activation.index += 1
        return touched

    def _call(self, activation: _Activation, instruction: Call) -> bool:
        args = [self._value(activation, a) for a in instruction.args]
        if self._syscall_listener is not None:
            # Keep the coarse syscall channel interleaved exactly as the
            # per-instruction path would: drain buffered events first.
            if self._buffer_count:
                self._flush_events()
            self._syscall_listener(instruction.callee, instruction.address)
        if instruction.callee == "read_int":
            activation.regs[instruction.dest] = self._read_input()
            return True
        if instruction.callee == "emit":
            self._outputs.append(args[0])
            return True
        callee = self._module.function(instruction.callee)
        # Advance the caller past the call before transferring control.
        activation.index += 1
        self._push_activation(callee, args, instruction.dest)
        return False

    @staticmethod
    def _binop(op: str, lhs: int, rhs: int) -> int:
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if rhs == 0:
            raise ZeroDivisionError
        # C semantics: truncation toward zero.
        quotient = abs(lhs) // abs(rhs)
        if (lhs < 0) != (rhs < 0):
            quotient = -quotient
        if op == "/":
            return quotient
        if op == "%":
            return lhs - quotient * rhs
        raise InterpreterError(f"unknown binop {op!r}")


def run_program(
    module: IRModule,
    inputs: Sequence[int] = (),
    entry: str = "main",
    tamper: Optional[TamperSpec] = None,
    event_listeners: Sequence[EventListener] = (),
    step_limit: int = 2_000_000,
    observers: Sequence[object] = (),
) -> RunResult:
    """Convenience wrapper: build an interpreter and run it."""
    interpreter = Interpreter(
        module,
        inputs=inputs,
        entry=entry,
        tamper=tamper,
        event_listeners=event_listeners,
        step_limit=step_limit,
        observers=observers,
    )
    return interpreter.run()
