"""Command-line interface: ``python -m repro.cli <command>``.

Subcommands:

* ``compile FILE``  — compile a mini-C file; dump the IR, the branch
  correlation tables, and their encoded sizes;
* ``run FILE``      — execute under IPDS monitoring with given inputs;
* ``attack FILE``   — execute with a single-word tampering injected and
  report whether control flow changed and whether the IPDS caught it;
* ``campaign NAME`` — run a Figure-7 style campaign against one of the
  built-in server workloads (or ``all``), optionally sharded across
  processes with ``--jobs``;
* ``timing NAME``   — baseline-vs-IPDS timing for one workload;
* ``audit TARGET``  — statically re-prove the soundness of the emitted
  correlation tables (file, workload name, or ``all``); exit 1 means
  diagnostics were found, exit 2 means the tool itself failed;
* ``lint TARGET``   — dead/infeasible-branch and unreachable-code
  warnings from fixpoint range reasoning (same exit convention);
* ``coverage TARGET`` — static protection-coverage report: per-function
  protected-branch fractions, a reason per unprotected branch, and the
  program's detectable tamper surface (informational; ``--fail-on
  never`` by default);
* ``explain FILE TRACE`` — replay a recorded trace with a flight
  recorder attached and explain every alarm against the compiler's
  provenance sidecar (exit 0 no alarms / 1 explained alarms / 2 tool
  error, the audit convention);
* ``bench-diff``    — compare fresh ``BENCH_*.json`` files against the
  committed baselines in ``benchmarks/baselines/`` (same convention);
* ``serve``         — long-lived detection daemon multiplexing many
  concurrent sessions over a local socket (NDJSON protocol, shared
  compile cache, per-session alarm policies; see DESIGN.md §4f);
* ``obs``           — campaign forensics observatory: aggregate a
  campaign's ``--forensics --trace-out`` outcome log into
  explained-correlation histograms (which compiler proofs caught the
  detected attacks, per reason and per workload).

``--version`` prints the package version (sourced from pyproject.toml).

Forensics: ``run``, ``attack`` and ``campaign`` accept ``--forensics``
(attach a bounded flight recorder and print a causal explanation for
every alarm) and ``--flight-recorder-depth N``; the single-run commands
also take ``--forensics-out PATH`` for the JSON ``AlarmReport``
document.

Observability: ``run``, ``attack``, ``campaign`` and ``timing`` accept
``--metrics-out PATH`` (a structured JSON run manifest, or append-mode
JSONL when the path ends in ``.jsonl``) and ``--trace-out PATH``
(committed control-flow events for the single-run commands — directly
replayable with ``repro.cli replay`` — or a per-attack outcome log for
campaigns).  The same verbs accept ``--prom-out PATH`` (Prometheus
text-exposition rendering of the run's metrics, histograms included)
and ``--chrome-trace-out PATH`` (hierarchical spans as Chrome
trace-event JSON, loadable in Perfetto).  ``run`` and ``replay`` accept
``--allow-unprotected`` for tolerant partial-coverage checking.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from .attacks.campaign import run_campaign, run_workload_campaign
from .correlation.encoding import table_sizes
from .cpu.simulator import normalized_performance
from .interp.interpreter import TamperSpec
from .ir.printer import format_module
from .observability import (
    JsonlWriter,
    MetricsRegistry,
    RunManifest,
    Tracer,
    export_trace,
    maybe_span,
    write_manifest,
    write_prometheus,
    write_spans,
)
from .pipeline import compile_program, compile_program_cached
from .runtime.flight_recorder import DEFAULT_DEPTH, FlightRecorder
from .runtime.replay import TraceRecorder
from .workloads.registry import get_workload, workload_names


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def _parse_inputs(text: str) -> List[int]:
    if not text:
        return []
    return [int(piece) for piece in text.replace(",", " ").split()]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def cmd_compile(args: argparse.Namespace) -> int:
    program = compile_program(
        _read_source(args.file), args.file, args.opt, check=args.check
    )
    if args.ir:
        print(format_module(program.module, show_addresses=True))
        print()
    for tables in program.tables:
        print(tables.describe())
        sizes = table_sizes(tables)
        print(
            f"  sizes: BSV {sizes.bsv_bits}b, BCV {sizes.bcv_bits}b, "
            f"BAT {sizes.bat_bits}b"
        )
    for stats in program.build_stats:
        print(
            f"stats {stats.function_name}: {stats.branches} branches, "
            f"{stats.checked} checked, {stats.set_entries} sets, "
            f"{stats.kill_entries} kills, hash trials {stats.hash_trials}"
        )
    return 0


def _record_ipds_metrics(metrics: MetricsRegistry, ipds) -> None:
    metrics.increment("ipds.events", ipds.stats.events)
    metrics.increment("ipds.checks", ipds.stats.checks)
    metrics.increment("ipds.alarms", len(ipds.alarms))
    if ipds.stats.unprotected_calls:
        metrics.increment(
            "ipds.unprotected_calls", ipds.stats.unprotected_calls
        )
    if ipds.stats.unprotected_branches:
        metrics.increment(
            "ipds.unprotected_branches", ipds.stats.unprotected_branches
        )


def _emit_manifest(
    args: argparse.Namespace,
    manifest: RunManifest,
    metrics: MetricsRegistry,
    **results: object,
) -> None:
    if not args.metrics_out:
        return
    manifest.finish(metrics, **results)
    write_manifest(manifest, args.metrics_out)
    print(f"metrics: manifest -> {args.metrics_out}")


def _new_flight_recorder(args: argparse.Namespace) -> Optional[FlightRecorder]:
    if not getattr(args, "forensics", False):
        return None
    return FlightRecorder(args.flight_recorder_depth)


def _new_tracer(args: argparse.Namespace) -> Optional[Tracer]:
    """A span tracer when ``--chrome-trace-out`` asked for one."""
    if not getattr(args, "chrome_trace_out", None):
        return None
    return Tracer()


def _emit_observability(
    args: argparse.Namespace,
    metrics: MetricsRegistry,
    tracer: Optional[Tracer] = None,
) -> None:
    """The shared ``--prom-out`` / ``--chrome-trace-out`` sink block."""
    prom_out = getattr(args, "prom_out", None)
    if prom_out:
        write_prometheus(metrics, prom_out)
        print(f"metrics: prometheus -> {prom_out}")
    chrome_out = getattr(args, "chrome_trace_out", None)
    if chrome_out and tracer is not None:
        count = write_spans(tracer.finished, chrome_out)
        print(f"spans: {count} -> {chrome_out}")


def _report_forensics(args: argparse.Namespace, ipds) -> None:
    """Explain a recorder-carrying IPDS's alarms on stdout (and to
    ``--forensics-out`` as JSON when requested)."""
    if ipds.flight_recorder is None:
        return
    from .forensics import explain_ipds, render_reports_text, reports_to_json
    from .staticcheck import write_output

    reports = explain_ipds(ipds)
    print("forensics:")
    print(render_reports_text(reports))
    if args.forensics_out:
        write_output(reports_to_json(reports), args.forensics_out)
        if args.forensics_out != "-":
            print(f"forensics report -> {args.forensics_out}")


def _run_session(args: argparse.Namespace, spec, metrics: MetricsRegistry):
    """Drive one CLI-owned detection session to a terminal state."""
    from .service.engine import DetectionSession

    tracer = _new_tracer(args)
    session = DetectionSession(spec, metrics=metrics, tracer=tracer)
    session.execute()
    _emit_observability(args, metrics, tracer)
    return session


def cmd_run(args: argparse.Namespace) -> int:
    from .service.engine import SessionSpec

    metrics = MetricsRegistry()
    manifest = RunManifest.begin(
        "run",
        file=args.file,
        inputs=args.inputs,
        entry=args.entry,
        opt=args.opt,
        allow_unprotected=args.allow_unprotected,
    )
    spec = SessionSpec(
        mode="run",
        workload=args.file,
        entry=args.entry,
        inputs=tuple(_parse_inputs(args.inputs)),
        opt_level=args.opt,
        allow_unprotected=args.allow_unprotected,
        forensics=args.forensics,
        flight_recorder_depth=args.flight_recorder_depth,
        record_trace=bool(args.trace_out),
    )
    session = _run_session(args, spec, metrics)
    result = session.run_result
    ipds = session.ipds
    print(f"status : {result.status.value}")
    print(f"outputs: {result.outputs}")
    print(f"steps  : {result.steps}")
    if args.trace_out:
        count = export_trace(session.trace_events, args.trace_out)
        print(f"trace  : {count} events -> {args.trace_out}")
    _emit_manifest(
        args,
        manifest,
        metrics,
        status=result.status.value,
        outputs=list(result.outputs),
        steps=result.steps,
        alarms=[str(alarm) for alarm in ipds.alarms],
        unprotected_calls=ipds.stats.unprotected_calls,
    )
    if ipds.detected:
        for alarm in ipds.alarms:
            print(f"ALARM  : {alarm}")
        _report_forensics(args, ipds)
        return 2
    print("alarms : none")
    _report_forensics(args, ipds)
    return 0


def cmd_attack(args: argparse.Namespace) -> int:
    from .service.engine import SessionSpec

    metrics = MetricsRegistry()
    manifest = RunManifest.begin(
        "attack",
        file=args.file,
        inputs=args.inputs,
        trigger_kind=args.trigger_kind,
        trigger=args.trigger,
        address=args.address,
        value=args.value,
        opt=args.opt,
    )
    tamper = TamperSpec(
        trigger_kind=args.trigger_kind,
        trigger_value=args.trigger,
        address=int(args.address, 0),
        value=args.value,
    )
    spec = SessionSpec(
        mode="attack",
        workload=args.file,
        entry=args.entry,
        inputs=tuple(_parse_inputs(args.inputs)),
        opt_level=args.opt,
        forensics=args.forensics,
        flight_recorder_depth=args.flight_recorder_depth,
        record_trace=bool(args.trace_out),
        tamper=tamper,
    )
    session = _run_session(args, spec, metrics)
    clean = session.clean_result
    attacked = session.run_result
    ipds = session.ipds
    changed = attacked.branch_trace != clean.branch_trace
    print(f"tamper fired        : {attacked.tamper_fired}")
    print(f"control flow changed: {changed}")
    print(f"outputs             : {clean.outputs} -> {attacked.outputs}")
    if args.trace_out:
        count = export_trace(session.trace_events, args.trace_out)
        print(f"trace               : {count} events -> {args.trace_out}")
    _emit_manifest(
        args,
        manifest,
        metrics,
        tamper_fired=attacked.tamper_fired,
        control_flow_changed=changed,
        detected=ipds.detected,
        alarms=[str(alarm) for alarm in ipds.alarms],
    )
    if ipds.detected:
        print(f"DETECTED            : {ipds.alarms[0]}")
        _report_forensics(args, ipds)
        return 2
    print("detected            : no")
    _report_forensics(args, ipds)
    return 0


#: ``audit``/``lint`` exit codes: 0 = clean, 1 = diagnostics at or above
#: the --fail-on severity, 2 = the tool itself failed (bad file, parse
#: error, ...).  Distinct from ``run``/``attack``, whose exit 2 means
#: "IPDS alarm" on an otherwise successful run.
EXIT_CLEAN = 0
EXIT_DIAGNOSTICS = 1
EXIT_TOOL_ERROR = 2


def _staticcheck_targets(args: argparse.Namespace):
    """Resolve the audit/lint target into [(label, source, name)]."""
    target = args.target
    if target == "all":
        return [
            (f"{name}@opt{args.opt}", get_workload(name).source, name)
            for name in workload_names()
        ]
    if target in workload_names():
        workload = get_workload(target)
        return [(f"{target}@opt{args.opt}", workload.source, target)]
    return [(f"{target}@opt{args.opt}", _read_source(target), target)]


def _run_staticcheck(args: argparse.Namespace, passes, fail_on: str) -> int:
    from .lang.errors import ReproError
    from .staticcheck import (
        Severity,
        json_report,
        render_text,
        run_passes,
        sarif_report,
        write_output,
    )

    metrics = MetricsRegistry()
    manifest = RunManifest.begin(
        args.command, target=args.target, opt=args.opt, fail_on=fail_on
    )
    try:
        groups = []
        for label, source, name in _staticcheck_targets(args):
            with metrics.span("compile"):
                program = compile_program(source, name, args.opt)
            diagnostics = run_passes(program, names=passes, metrics=metrics)
            groups.append((label, diagnostics))
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_TOOL_ERROR

    for label, diagnostics in groups:
        print(f"== {label}")
        print(render_text(diagnostics))
    if args.json:
        write_output(json_report(groups), args.json)
    if args.sarif:
        write_output(sarif_report(groups), args.sarif)

    combined = [d for _, diagnostics in groups for d in diagnostics]
    _emit_manifest(
        args,
        manifest,
        metrics,
        targets=len(groups),
        diagnostics=len(combined),
        errors=sum(1 for d in combined if d.severity is Severity.ERROR),
        warnings=sum(
            1 for d in combined if d.severity is Severity.WARNING
        ),
    )
    if fail_on != "never":
        threshold = Severity(fail_on)
        if any(d.severity.at_least(threshold) for d in combined):
            return EXIT_DIAGNOSTICS
    return EXIT_CLEAN


def cmd_audit(args: argparse.Namespace) -> int:
    from .staticcheck import AUDIT_PASSES

    return _run_staticcheck(args, AUDIT_PASSES, args.fail_on)


def cmd_lint(args: argparse.Namespace) -> int:
    from .staticcheck import LINT_PASSES

    return _run_staticcheck(args, LINT_PASSES, args.fail_on)


def cmd_coverage(args: argparse.Namespace) -> int:
    from .staticcheck import COVERAGE_PASSES

    if getattr(args, "compare_opt", False):
        return _coverage_compare_opt(args)
    return _run_staticcheck(args, COVERAGE_PASSES, args.fail_on)


def cmd_predict(args: argparse.Namespace) -> int:
    from .staticcheck import PREDICT_PASSES

    return _run_staticcheck(args, PREDICT_PASSES, args.fail_on)


def _protected_branch_labels(program) -> set:
    """The identity set ``--compare-opt`` tracks: (function, block) of
    every BCV-verified conditional branch."""
    labels = set()
    for fn_name, tables in program.tables.by_function.items():
        for meta in tables.branch_meta:
            if tables.is_checked(meta.pc):
                labels.add((fn_name, meta.block_label))
    return labels


def _coverage_compare_opt(args: argparse.Namespace) -> int:
    """``repro coverage --compare-opt``: protected-branch monotonicity
    across optimization levels.

    Levels 1→2→3 share one optimized IR and only deepen the analysis
    (interprocedural summaries, then feasible-path pruning), so their
    protected-branch *sets* must grow monotonically — any branch
    protected at opt N still protected at opt N+1.  A violation means
    a deeper analysis lost a correlation it already had, and exits 1.

    The 0→1 step is reported but not asserted: the optimizer rewrites
    the IR itself (folding stores that were correlation evidence), so
    branches protected at opt 0 can legitimately disappear.
    """
    from .lang.errors import ReproError

    metrics = MetricsRegistry()
    manifest = RunManifest.begin(
        args.command, target=args.target, compare_opt=True
    )
    violations = []
    try:
        targets = _staticcheck_targets(args)
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_TOOL_ERROR
    for label, source, name in targets:
        try:
            with metrics.span("compile"):
                programs = {
                    opt: compile_program(source, name, opt)
                    for opt in (0, 1, 2, 3)
                }
        except (OSError, ReproError) as error:
            print(f"error: {error}", file=sys.stderr)
            return EXIT_TOOL_ERROR
        sets = {
            opt: _protected_branch_labels(program)
            for opt, program in programs.items()
        }
        totals = {
            opt: sum(
                len(tables.branch_pcs)
                for tables in program.tables.by_function.values()
            )
            for opt, program in programs.items()
        }
        print(f"== {name}")
        print("  opt  protected  total  pct     delta")
        for opt in (0, 1, 2, 3):
            count, total = len(sets[opt]), totals[opt]
            pct = 100.0 * count / total if total else 0.0
            if opt == 0:
                delta = ""
            else:
                gained = len(sets[opt] - sets[opt - 1])
                lost = len(sets[opt - 1] - sets[opt])
                delta = f"+{gained}/-{lost} vs opt{opt - 1}"
                if opt == 1:
                    delta += "  (informational: optimizer rewrites the IR)"
                elif lost:
                    missing = sorted(sets[opt - 1] - sets[opt])
                    violations.append((name, opt, missing))
                    delta += "  MONOTONICITY VIOLATION"
            print(
                f"  {opt}    {count:<9} {total:<6} {pct:5.1f}%  {delta}"
            )
    for name, opt, missing in violations:
        lost = ", ".join(f"{fn}/{block}" for fn, block in missing)
        print(
            f"VIOLATION: {name}: branches protected at opt{opt - 1} "
            f"lost at opt{opt}: {lost}",
            file=sys.stderr,
        )
    _emit_manifest(
        args,
        manifest,
        metrics,
        targets=len(targets),
        violations=len(violations),
    )
    return EXIT_DIAGNOSTICS if violations else EXIT_CLEAN


def cmd_record(args: argparse.Namespace) -> int:
    from .interp.interpreter import run_program
    from .runtime.replay import TraceRecorder, dump_trace

    program = compile_program(_read_source(args.file), args.file, args.opt)
    recorder = TraceRecorder()
    result = run_program(
        program.module,
        inputs=_parse_inputs(args.inputs),
        event_listeners=[recorder],
    )
    with open(args.out, "w", encoding="utf-8") as handle:
        count = dump_trace(recorder.events, handle)
    print(f"status : {result.status.value}")
    print(f"events : {count} -> {args.out}")
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from .service.engine import SessionSpec

    with open(args.trace, "r", encoding="utf-8") as handle:
        trace_text = handle.read()
    spec = SessionSpec(
        mode="replay",
        workload=args.file,
        opt_level=args.opt,
        allow_unprotected=args.allow_unprotected,
        trace_text=trace_text,
    )
    session = _run_session(args, spec, MetricsRegistry())
    if session.alarms:
        for alarm in session.alarms:
            print(f"ALARM: {alarm}")
        return 2
    print("trace is clean (no infeasible paths)")
    return 0


def _dump_outcomes(results, path: str) -> int:
    """Write one JSONL record per attack outcome (campaign --trace-out)."""
    writer = JsonlWriter(path)
    for result in results:
        for outcome in result.attacks:
            writer.write(outcome.to_record(result.workload))
    return writer.records_written


def _print_campaign_forensics(results) -> None:
    """Per-attack explanation summaries for detected attacks."""
    explained = [
        (result.workload, outcome)
        for result in results
        for outcome in result.attacks
        if outcome.explanations
    ]
    if not explained:
        return
    print(f"forensics: {len(explained)} detected attack(s) explained")
    for workload, outcome in explained:
        for chain in outcome.explanations:
            print(f"  {workload}#{outcome.index} "
                  f"[{outcome.target_label}={outcome.value}]: {chain}")


def cmd_explain(args: argparse.Namespace) -> int:
    """Replay a recorded trace and explain its alarms offline.

    Exit codes follow the ``audit`` convention: 0 = no alarms, 1 =
    alarms were raised (and explained), 2 = tool error.  Provenance is
    deliberately read back from the packed binary image — explanations
    come from the sidecar exactly as a deployed runtime would see them.
    """
    from .correlation.binary_image import load_program
    from .forensics import explain_trace, render_reports_text, reports_to_json
    from .lang.errors import ReproError
    from .runtime.replay import load_trace
    from .staticcheck import sarif_report, write_output

    metrics = MetricsRegistry()
    manifest = RunManifest.begin(
        "explain", file=args.file, trace=args.trace, opt=args.opt
    )
    try:
        if args.file in workload_names():
            source, name = get_workload(args.file).source, args.file
        else:
            source, name = _read_source(args.file), args.file
        with metrics.span("compile"):
            program = compile_program(source, name, args.opt)
        tables, _ = load_program(program.to_image())
        with open(args.trace, "r", encoding="utf-8") as handle:
            events = list(load_trace(handle))
        with metrics.span("replay"):
            _, reports = explain_trace(
                tables,
                events,
                depth=args.depth,
                allow_unprotected=args.allow_unprotected,
                history_limit=args.history,
            )
    except (OSError, ReproError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_TOOL_ERROR
    print(render_reports_text(reports))
    if args.json:
        write_output(reports_to_json(reports), args.json)
    if args.sarif:
        diagnostics = [report.to_diagnostic() for report in reports]
        write_output(sarif_report([(name, diagnostics)]), args.sarif)
    metrics.increment("explain.events", len(events))
    metrics.increment("explain.alarms", len(reports))
    _emit_manifest(
        args,
        manifest,
        metrics,
        events=len(events),
        alarms=len(reports),
        explained=sum(1 for report in reports if report.explained),
    )
    return EXIT_DIAGNOSTICS if reports else EXIT_CLEAN


def cmd_bench_diff(args: argparse.Namespace) -> int:
    from .observability.benchdiff import run_diff

    return run_diff(args)


def cmd_obs(args: argparse.Namespace) -> int:
    """Aggregate a campaign outcome log into explained-correlation
    histograms (``repro obs``).  Exit 0 on success, 2 on tool error."""
    from .forensics.observatory import ObservatoryError, observe_log
    from .staticcheck import write_output

    try:
        observation = observe_log(args.outcomes)
    except (OSError, ObservatoryError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_TOOL_ERROR
    if args.json:
        write_output(observation.to_json(), args.json)
        if args.json != "-":
            print(f"observatory report -> {args.json}")
    if args.json != "-":
        print(observation.render_text())
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    metrics = MetricsRegistry()
    tracer = _new_tracer(args)
    manifest = RunManifest.begin(
        "campaign",
        workload=args.workload,
        attacks=args.attacks,
        jobs=args.jobs,
        model=args.model,
        opt=args.opt,
        seed_prefix=args.seed_prefix,
        timing_mode=args.timing_mode,
    )
    if args.workload == "all":
        from .reporting import render_figure7

        summary = run_campaign(
            attacks=args.attacks,
            seed_prefix=args.seed_prefix,
            attack_model=args.model,
            opt_level=args.opt,
            jobs=args.jobs,
            metrics=metrics,
            forensics=args.forensics,
            flight_recorder_depth=args.flight_recorder_depth,
            timing_mode=args.timing_mode,
            tracer=tracer,
        )
        print(render_figure7(summary))
        results = summary.results
        outcome_summary: dict = {
            "workloads": len(summary.results),
            "avg_pct_changed": summary.avg_pct_changed,
            "avg_pct_detected": summary.avg_pct_detected,
        }
    else:
        workload = get_workload(args.workload)
        result = run_workload_campaign(
            workload,
            attacks=args.attacks,
            seed_prefix=args.seed_prefix,
            attack_model=args.model,
            opt_level=args.opt,
            jobs=args.jobs,
            metrics=metrics,
            forensics=args.forensics,
            flight_recorder_depth=args.flight_recorder_depth,
            timing_mode=args.timing_mode,
            tracer=tracer,
        )
        print(f"workload {workload.name} ({workload.vuln_kind}), "
              f"{result.total} attacks:")
        print(f"  control flow changed: {result.changed} "
              f"({result.pct_changed:.1f}%)")
        print(f"  detected            : {result.detected} "
              f"({result.pct_detected:.1f}%)")
        print(f"  detected of changed : "
              f"{result.pct_detected_of_changed:.1f}%")
        if result.timing_mode is not None:
            cycles = [a.cycles for a in result.attacks if a.cycles is not None]
            if cycles:
                print(f"  avg attack cycles   : "
                      f"{sum(cycles) / len(cycles):.0f} "
                      f"({result.timing_mode} timing)")
        results = [result]
        outcome_summary = {
            "total": result.total,
            "changed": result.changed,
            "detected": result.detected,
        }
    if args.forensics:
        _print_campaign_forensics(results)
    if args.trace_out:
        count = _dump_outcomes(results, args.trace_out)
        print(f"outcomes: {count} records -> {args.trace_out}")
    _emit_observability(args, metrics, tracer)
    _emit_manifest(args, manifest, metrics, **outcome_summary)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Start the long-lived detection daemon (``repro serve``)."""
    from .service.daemon import DetectionDaemon

    daemon = DetectionDaemon(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        max_workers=args.max_workers,
        quarantine_dir=args.quarantine_dir,
        default_policy=args.policy,
        trace_out=args.trace_out,
    )
    daemon.on_ready = lambda where: print(
        f"serving on {where} ({args.max_workers} workers)", flush=True
    )
    try:
        return daemon.run()
    except KeyboardInterrupt:
        print("serve: interrupted, shutting down", file=sys.stderr)
        return 0


def cmd_timing(args: argparse.Namespace) -> int:
    metrics = MetricsRegistry()
    tracer = _new_tracer(args)
    manifest = RunManifest.begin(
        "timing", workload=args.workload, scale=args.scale,
        timing_mode=args.timing_mode,
    )
    workload = get_workload(args.workload)
    with maybe_span(
        tracer, "timing", workload=args.workload, scale=args.scale,
        timing_mode=args.timing_mode,
    ):
        with maybe_span(tracer, "compile"), metrics.span("compile"):
            program = compile_program_cached(workload.source, workload.name)
        inputs = workload.make_inputs(
            random.Random(f"cli:{workload.name}"), args.scale
        )
        observers: List[object] = []
        recorder: Optional[TraceRecorder] = None
        if args.trace_out:
            recorder = TraceRecorder()
            observers.append(recorder)
        with maybe_span(tracer, "simulate"), metrics.span("simulate"):
            comp = normalized_performance(
                program, inputs, workload.name, observers=observers,
                timing_mode=args.timing_mode,
            )
    metrics.increment("timing.instructions", comp.instructions)
    metrics.increment("timing.baseline_cycles", comp.baseline_cycles)
    metrics.increment("timing.ipds_cycles", comp.ipds_cycles)
    print(f"workload {workload.name}: {comp.instructions} instructions")
    print(f"  baseline cycles : {comp.baseline_cycles}")
    print(f"  IPDS cycles     : {comp.ipds_cycles}")
    print(f"  normalized perf : {comp.normalized_performance:.4f} "
          f"({comp.degradation_pct:.3f}% degradation)")
    print(f"  check latency   : {comp.avg_check_latency:.1f} cycles")
    if recorder is not None:
        count = export_trace(recorder.events, args.trace_out)
        print(f"  trace           : {count} events -> {args.trace_out}")
    _emit_observability(args, metrics, tracer)
    _emit_manifest(
        args,
        manifest,
        metrics,
        instructions=comp.instructions,
        baseline_cycles=comp.baseline_cycles,
        ipds_cycles=comp.ipds_cycles,
        normalized_performance=comp.normalized_performance,
        avg_check_latency=comp.avg_check_latency,
    )
    return 0


def _add_opt_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--opt", type=int, default=0, choices=[0, 1, 2, 3],
                   help="optimization level: 0/1 intra-procedural, "
                        "2 adds summary-based interprocedural analysis, "
                        "3 adds feasible-path-sensitive correlation")


def _add_report_args(
    p: argparse.ArgumentParser,
    json_help: str = "write a JSON report ('-' for stdout)",
    sarif_help: str = "write a SARIF 2.1.0 report ('-' for stdout)",
    metrics: bool = True,
) -> None:
    """The shared report-output flag block (--json/--sarif[/--metrics-out])
    of the static-analysis subcommands."""
    p.add_argument("--json", default=None, metavar="PATH", help=json_help)
    p.add_argument("--sarif", default=None, metavar="PATH", help=sarif_help)
    if metrics:
        p.add_argument("--metrics-out", default=None,
                       help="write a JSON run manifest with per-pass "
                            "timing spans")


def _add_forensics_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--forensics", action="store_true",
                   help="attach a flight recorder and explain any alarms "
                        "(setting event, violated compiler correlation, "
                        "causal chain)")
    p.add_argument("--flight-recorder-depth", type=_positive_int,
                   default=DEFAULT_DEPTH, metavar="N",
                   help=f"flight recorder ring size in committed events "
                        f"(default {DEFAULT_DEPTH})")


def _add_observability_args(
    p: argparse.ArgumentParser,
    trace_help: str = "write the control-flow event trace "
    "(replayable with the 'replay' subcommand)",
) -> None:
    p.add_argument("--metrics-out", default=None,
                   help="write a JSON run manifest (counters, spans, "
                        "results); appends one line if path ends in .jsonl")
    p.add_argument("--trace-out", default=None, help=trace_help)
    p.add_argument("--prom-out", default=None, metavar="PATH",
                   help="write the run's metrics (counters, timers, "
                        "histograms) in Prometheus text exposition format")
    p.add_argument("--chrome-trace-out", default=None, metavar="PATH",
                   help="record hierarchical spans and write Chrome "
                        "trace-event JSON (Perfetto-loadable; a .jsonl "
                        "path appends one span record per line instead)")


def build_parser() -> argparse.ArgumentParser:
    from . import __version__

    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="IPDS: infeasible-path anomaly detection toolkit.",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile and dump tables")
    p.add_argument("file")
    p.add_argument("--ir", action="store_true", help="also dump the IR")
    _add_opt_arg(p)
    p.add_argument("--check", action="store_true",
                   help="run the static soundness auditor on the emitted "
                        "tables and fail on any error-severity diagnostic")
    p.set_defaults(func=cmd_compile)

    for name, help_text, default_fail, func in (
        ("audit", "statically re-prove table soundness", "error",
         cmd_audit),
        ("lint", "dead/infeasible branch and unreachable-code report",
         "warning", cmd_lint),
        ("coverage", "static protection-coverage report (COV6xx)",
         "never", cmd_coverage),
        ("predict", "static tamper-detectability verdicts (DET8xx)",
         "never", cmd_predict),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("target",
                       help="a mini-C file, a workload name, or 'all'")
        _add_opt_arg(p)
        p.add_argument("--fail-on", choices=["error", "warning", "never"],
                       default=default_fail,
                       help=f"exit 1 at/above this severity "
                            f"(default: {default_fail})")
        if name == "coverage":
            p.add_argument(
                "--compare-opt", action="store_true",
                help="compile at opt 0-3 and assert protected-branch "
                     "set monotonicity across the fixed-IR chain "
                     "1→2→3 (0→1 reported informationally)")
        _add_report_args(p)
        p.set_defaults(func=func)

    p = sub.add_parser("run", help="run a program under IPDS monitoring")
    p.add_argument("file")
    p.add_argument("--inputs", default="", help="e.g. '1 2 3'")
    p.add_argument("--entry", default="main")
    _add_opt_arg(p)
    p.add_argument("--allow-unprotected", action="store_true",
                   help="tolerate calls into functions without correlation "
                        "tables (partial coverage) instead of erroring")
    _add_forensics_args(p)
    p.add_argument("--forensics-out", default=None, metavar="PATH",
                   help="write the alarm forensics report as JSON "
                        "('-' for stdout)")
    _add_observability_args(p)
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("attack", help="run with a memory tampering")
    p.add_argument("file")
    p.add_argument("--inputs", default="")
    p.add_argument("--entry", default="main")
    _add_opt_arg(p)
    p.add_argument("--trigger-kind", choices=["read", "step"], default="read")
    p.add_argument("--trigger", type=int, required=True,
                   help="input index / step count that fires the tamper")
    p.add_argument("--address", required=True,
                   help="word address to corrupt (accepts 0x..)")
    p.add_argument("--value", type=int, required=True)
    _add_forensics_args(p)
    p.add_argument("--forensics-out", default=None, metavar="PATH",
                   help="write the alarm forensics report as JSON "
                        "('-' for stdout)")
    _add_observability_args(p)
    p.set_defaults(func=cmd_attack)

    p = sub.add_parser("record", help="record a control-flow event trace")
    p.add_argument("file")
    p.add_argument("--inputs", default="")
    p.add_argument("--out", required=True)
    _add_opt_arg(p)
    p.set_defaults(func=cmd_record)

    p = sub.add_parser("replay", help="check a recorded trace offline")
    p.add_argument("file")
    p.add_argument("trace")
    _add_opt_arg(p)
    p.add_argument("--allow-unprotected", action="store_true",
                   help="tolerate trace events from functions without "
                        "correlation tables (partial coverage)")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser("campaign", help="Figure-7 campaign on a workload")
    p.add_argument("workload", choices=workload_names() + ["all"],
                   help="one server, or 'all' for the full registry")
    p.add_argument("--attacks", type=int, default=100)
    p.add_argument("--jobs", type=_positive_int, default=1,
                   help="shard attacks across N processes (same results "
                        "at any value; see docs on seed semantics)")
    _add_opt_arg(p)
    p.add_argument("--model", choices=["input", "process"], default="input")
    p.add_argument("--seed-prefix", default="",
                   help="campaign seed namespace (attack i draws from "
                        "seed '<prefix><workload>:<i>')")
    p.add_argument("--timing-mode", choices=["exact", "segment"],
                   default=None,
                   help="attach a timing model to every attack run and "
                        "record cycle counts ('segment' uses the "
                        "memoized fast path; detection results are "
                        "identical either way)")
    _add_forensics_args(p)
    _add_observability_args(
        p, trace_help="append per-attack outcome records as JSONL"
    )
    p.set_defaults(func=cmd_campaign)

    p = sub.add_parser(
        "explain",
        help="replay a recorded trace and explain its alarms "
             "(exit 0 no alarms / 1 explained alarms / 2 tool error)",
    )
    p.add_argument("file", help="a mini-C file or a workload name")
    p.add_argument("trace", help="event trace from 'record' / --trace-out")
    _add_opt_arg(p)
    p.add_argument("--depth", type=_positive_int, default=DEFAULT_DEPTH,
                   metavar="N", help="flight recorder ring size for the "
                   f"replay (default {DEFAULT_DEPTH})")
    p.add_argument("--history", type=_positive_int, default=8, metavar="N",
                   help="flight-recorder entries quoted per report")
    p.add_argument("--allow-unprotected", action="store_true",
                   help="tolerate trace events from functions without "
                        "correlation tables (partial coverage)")
    _add_report_args(
        p,
        json_help="write the AlarmReport document ('-' for stdout)",
        sarif_help="write alarms as SARIF 2.1.0 FOR501/FOR502 "
                   "diagnostics ('-' for stdout)",
    )
    p.set_defaults(func=cmd_explain)

    p = sub.add_parser(
        "obs",
        help="campaign forensics observatory: which compiler proofs "
             "caught the detected attacks (reads a campaign "
             "--forensics --trace-out outcome log)",
    )
    p.add_argument("outcomes",
                   help="per-attack outcome JSONL from "
                        "'campaign --forensics --trace-out'")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the observatory report as JSON "
                        "('-' for stdout)")
    p.set_defaults(func=cmd_obs)

    p = sub.add_parser(
        "bench-diff",
        help="compare BENCH_*.json against committed baselines "
             "(exit 0 ok / 1 regression / 2 tool error)",
    )
    from .observability.benchdiff import build_arg_parser as _bench_args

    _bench_args(p)
    p.set_defaults(func=cmd_bench_diff)

    p = sub.add_parser(
        "serve",
        help="long-lived detection daemon (line-delimited JSON over "
             "a local socket)",
    )
    p.add_argument("--socket", default=None, metavar="PATH",
                   help="unix domain socket path (default: TCP)")
    p.add_argument("--host", default="127.0.0.1",
                   help="TCP bind address when no --socket is given")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (0 = ephemeral, printed at startup)")
    p.add_argument("--max-workers", type=_positive_int, default=8,
                   metavar="N",
                   help="concurrently executing sessions (default 8)")
    p.add_argument("--quarantine-dir", default=None, metavar="DIR",
                   help="default directory for the quarantine policy's "
                        "replayable traces")
    p.add_argument("--policy", default=None,
                   choices=["log", "kill-session", "quarantine"],
                   help="default alarm policy for sessions that don't "
                        "name one (default: log)")
    p.add_argument("--trace-out", default=None, metavar="PATH",
                   help="record per-session spans under one daemon root "
                        "span and write them at shutdown (Chrome "
                        "trace-event JSON; .jsonl appends span records)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("timing", help="Figure-9 timing for a workload")
    p.add_argument("workload", choices=workload_names())
    p.add_argument("--scale", type=int, default=10)
    p.add_argument("--timing-mode", choices=["exact", "segment"],
                   default="exact",
                   help="'exact' is the cycle-accurate reference; "
                        "'segment' memoizes per-trace-segment deltas "
                        "(accuracy pinned by the tolerance matrix)")
    _add_observability_args(p)
    p.set_defaults(func=cmd_timing)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Ctrl-C during a campaign (or any verb) exits with the
        # conventional 130 instead of a executor traceback; in-flight
        # shard futures are cancelled by the engine's cleanup.
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
