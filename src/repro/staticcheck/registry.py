"""Pass registry and orchestration for the static checks.

Each pass is a named :class:`CheckPass` mapping a compiled
:class:`~repro.pipeline.ProtectedProgram` to a list of diagnostics.
``run_passes`` shares the expensive lower-layer analyses (alias sets,
purity) across passes, times each pass through a
:class:`~repro.observability.metrics.MetricsRegistry` span
(``staticcheck.<pass>``), and returns all findings sorted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from ..analysis.alias import analyze_aliases
from ..analysis.purity import PurityResult, analyze_purity
from ..observability.metrics import MetricsRegistry
from .audit import audit_image, audit_program
from .coverage import coverage_report
from .deadcode import find_dead_branches
from .detectability import predict_detectability
from .diagnostics import Diagnostic
from .feasaudit import audit_feasible
from .interproc import audit_interproc
from .irverify import verify_module_diagnostics


@dataclass(frozen=True)
class CheckPass:
    """One registered static check."""

    name: str
    title: str
    runner: Callable[[object, PurityResult], List[Diagnostic]]


PASSES: Tuple[CheckPass, ...] = (
    CheckPass(
        "ir-verify",
        "IR structural verification",
        lambda program, purity: verify_module_diagnostics(program.module),
    ),
    CheckPass(
        "correlation-audit",
        "BAT/BCV soundness audit (independent reproof)",
        lambda program, purity: audit_program(program, purity),
    ),
    CheckPass(
        "interproc-audit",
        "interprocedural kill-suppression audit (IP5xx reproof)",
        lambda program, purity: audit_interproc(program, purity),
    ),
    CheckPass(
        "feasible-audit",
        "feasible-path action audit (FP7xx reproof)",
        lambda program, purity: audit_feasible(program, purity),
    ),
    CheckPass(
        "image-audit",
        "binary table image audit",
        lambda program, purity: audit_image(program),
    ),
    CheckPass(
        "dead-branch",
        "infeasible/dead branch and unreachable code detection",
        lambda program, purity: find_dead_branches(
            program.module,
            purity,
            opt_level=getattr(program, "opt_level", 0),
        ),
    ),
    CheckPass(
        "coverage",
        "static protection-coverage report",
        lambda program, purity: coverage_report(program, purity),
    ),
    CheckPass(
        "detectability",
        "static tamper-detectability prover (DET8xx verdicts)",
        lambda program, purity: predict_detectability(program, purity),
    ),
)

#: ``repro audit`` — soundness-bearing passes (errors gate CI).
AUDIT_PASSES: Tuple[str, ...] = (
    "ir-verify",
    "correlation-audit",
    "interproc-audit",
    "feasible-audit",
    "image-audit",
)

#: ``repro lint`` — advisory passes.
LINT_PASSES: Tuple[str, ...] = ("dead-branch",)

#: ``repro coverage`` — informational protection-coverage report.
COVERAGE_PASSES: Tuple[str, ...] = ("coverage",)

#: ``repro predict`` — static tamper-detectability verdicts.
PREDICT_PASSES: Tuple[str, ...] = ("detectability",)


def pass_by_name(name: str) -> CheckPass:
    for check in PASSES:
        if check.name == name:
            return check
    raise KeyError(f"unknown static check pass {name!r}")


def run_passes(
    program,
    names: Optional[Sequence[str]] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> List[Diagnostic]:
    """Run the selected passes (default: all) over a compiled program."""
    selected = [pass_by_name(n) for n in (names or [p.name for p in PASSES])]
    analyze_aliases(program.module)
    purity = analyze_purity(program.module)
    diagnostics: List[Diagnostic] = []
    for check in selected:
        if metrics is not None:
            with metrics.span(f"staticcheck.{check.name}"):
                found = check.runner(program, purity)
            metrics.increment(
                f"staticcheck.{check.name}.diagnostics", len(found)
            )
        else:
            found = check.runner(program, purity)
        diagnostics.extend(found)
    return sorted(diagnostics, key=Diagnostic.sort_key)
