"""Feasible-path action audit (pass: feasible-audit).

At ``--opt 3`` the builder adds ``SET_T``/``SET_NT`` entries proved by
its feasible-path MFP (:mod:`repro.analysis.feasible`): a forward range
propagation seeded at the source edge in which conditional edges whose
direction contradicts the propagated ranges are *pruned* instead of
merged over.  Every such entry carries a ``feasible-path`` provenance
record whose ``witness`` lists the pruned edges.  This pass re-proves
each record from the auditor's *own* forward facts
(:mod:`repro.staticcheck.facts`) under a **witness-restricted** MFP:

* ``FP701`` — a ``feasible-path`` provenance record does not
  correspond to a live BAT SET entry (tampered or stale sidecar);
* ``FP702`` — a pruned-edge witness is not independently re-provable:
  a witness names an unknown or non-conditional block, or the edge is
  reached at the fixpoint and is *feasible* from the re-derived state;
* ``FP703`` — the claimed outcome does not hold at the target under
  the witness-restricted propagation: the range was laundered through
  a pruned merge the record never declared (or the action was
  flipped).

The laundering guard is the heart of the protocol: during propagation
an infeasible direction is dropped **only when the record's witness
declares it**.  Any other direction propagates — refined by every
constraint that does not empty a binding, so the state stays as tight
as the builder's without ever *emulating* a prune (a propagated
environment is never empty).  Pruning the builder never claimed
therefore cannot silently rescue the proof: deleting a load-bearing
witness entry turns into ``FP703``, fabricating one into ``FP702``.

The shared trust base with the builder stays the may-write model
(alias sets, purity, :class:`~repro.analysis.defs.DefinitionMap`); the
block facts, transfer functions and the range lattice are the
auditor's own (:mod:`repro.staticcheck.facts`,
:mod:`repro.staticcheck.domain`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..analysis.alias import analyze_aliases
from ..analysis.defs import DefinitionMap
from ..analysis.purity import PurityResult, analyze_purity
from ..correlation.actions import BranchAction
from ..correlation.provenance import REASON_FEASIBLE, ActionProvenance
from ..correlation.tables import FunctionTables
from ..ir.function import IRFunction, IRModule
from .diagnostics import Diagnostic, DiagnosticSink
from .domain import Env, ValueSet, env_get, env_join, env_set, env_widen
from .facts import BlockSummary, edge_environment, summarize_function, transfer_block
from .mfp import WIDEN_AFTER

FEASAUDIT_PASS = "feasible-audit"

#: A parsed witness edge: (block label, direction).
Edge = Tuple[str, bool]


def audit_feasible(
    program, purity: Optional[PurityResult] = None
) -> List[Diagnostic]:
    """Audit every function's feasible-path provenance records."""
    sink = DiagnosticSink(FEASAUDIT_PASS)
    module: IRModule = program.module
    if purity is None:
        analyze_aliases(module)
        purity = analyze_purity(module)
    for fn in module.functions:
        tables = program.tables.by_function.get(fn.name)
        if tables is None:
            continue  # correlation-audit reports COR210
        _audit_function(sink, fn, module, tables, purity)
    return sink.diagnostics


def _audit_function(
    sink: DiagnosticSink,
    fn: IRFunction,
    module: IRModule,
    tables: FunctionTables,
    purity: PurityResult,
) -> None:
    # Structural preconditions (hash collisions, PC drift) belong to the
    # correlation audit; without them slot identities are meaningless,
    # so bail rather than report nonsense here.
    ir_pcs = tuple(sorted(b.address for b in fn.cond_branches()))
    if tuple(sorted(tables.branch_pcs)) != ir_pcs:
        return
    slots = {tables.slot_of(pc) for pc in tables.branch_pcs}
    if len(slots) != len(tables.branch_pcs):
        return

    records = [
        record
        for record in tables.provenance
        if record.reason == REASON_FEASIBLE
    ]
    if not records:
        return

    def_map = DefinitionMap(fn, module, purity)
    summaries = summarize_function(fn, def_map)
    label_of_pc: Dict[int, str] = {
        summary.branch_pc: summary.label
        for summary in summaries.values()
        if summary.branch_pc is not None
    }

    for record in records:
        # -- FP701: the record must back a live SET entry ------------
        target_slot = tables.slot_of(record.target_pc)
        live = record.action in (
            BranchAction.SET_T.value,
            BranchAction.SET_NT.value,
        ) and any(
            entry_target == target_slot and action.value == record.action
            for entry_target, action in tables.actions_for(
                record.source_pc, record.taken
            )
        )
        if not live:
            sink.emit(
                "FP701",
                f"feasible-path record claims ({record.source_block}, "
                f"{record.direction}) -> {record.action} "
                f"{record.target_block}, but no such BAT entry is live",
                function=fn.name,
                block=record.source_block,
                pc=record.source_pc,
            )
            continue
        _reprove_record(sink, fn, summaries, label_of_pc, record)


def _parse_witness(
    summaries: Dict[str, BlockSummary], record: ActionProvenance
) -> Tuple[Optional[Set[Edge]], Optional[str]]:
    """Parse and structurally validate the pruned-edge witness.

    Returns ``(edges, None)`` on success, ``(None, complaint)`` when a
    witness entry is malformed or names a non-conditional edge."""
    edges: Set[Edge] = set()
    for entry in record.witness or ():
        label, sep, direction = entry.rpartition(":")
        if not sep or direction not in ("T", "NT"):
            return None, f"malformed witness edge {entry!r}"
        summary = summaries.get(label)
        if summary is None:
            return None, f"witness names unknown block {label!r}"
        if summary.branch_pc is None:
            return None, (
                f"witness edge {entry!r} is not a conditional edge "
                f"(block has no conditional branch)"
            )
        edges.add((label, direction == "T"))
    return edges, None


def _reprove_record(
    sink: DiagnosticSink,
    fn: IRFunction,
    summaries: Dict[str, BlockSummary],
    label_of_pc: Dict[int, str],
    record: ActionProvenance,
) -> None:
    """Re-prove one record under the witness-restricted MFP."""
    where = (
        f"({record.source_block}, {record.direction}) -> "
        f"{record.action} {record.target_block}"
    )

    witness, complaint = _parse_witness(summaries, record)
    if witness is None:
        sink.emit(
            "FP702",
            f"{where}: {complaint}",
            function=fn.name,
            block=record.source_block,
            pc=record.source_pc,
        )
        return

    source_label = label_of_pc.get(record.source_pc)
    target_label = label_of_pc.get(record.target_pc)
    if source_label is None or target_label is None:
        sink.emit(
            "FP702",
            f"{where}: the record's source or target is not a "
            f"conditional branch",
            function=fn.name,
            block=record.source_block,
            pc=record.source_pc,
        )
        return

    # Seed: the state after the source block commits its direction.  A
    # None seed means the direction itself never executes — every claim
    # about what follows it is vacuously true.
    source = summaries[source_label]
    env_out, snapshots = transfer_block(source, {})
    seed = edge_environment(source, env_out, snapshots, record.taken)
    if seed is None:
        return
    start = (
        source.taken_target if record.taken else source.fallthrough_target
    )

    states = _witness_restricted_mfp(summaries, {start: seed}, witness)

    # -- FP702: every *reached* witness edge must re-prove infeasible
    # at the fixpoint (unreached sources are vacuous — the edge cannot
    # occur after the source direction commits) ----------------------
    for label, direction in sorted(witness):
        if label not in states:
            continue
        summary = summaries[label]
        env_out, snapshots = transfer_block(summary, states[label])
        if edge_environment(summary, env_out, snapshots, direction) is not None:
            sink.emit(
                "FP702",
                f"{where}: witnessed pruned edge "
                f"{label}:{'T' if direction else 'NT'} is feasible "
                f"from the re-derived state — the infeasibility claim "
                f"does not re-prove",
                function=fn.name,
                block=label,
                pc=summary.branch_pc,
            )
            return

    # -- FP703: the forced outcome must hold at the target -----------
    if target_label not in states:
        return  # target unreached after the edge: vacuously safe
    target = summaries[target_label]
    env_out, snapshots = transfer_block(target, states[target_label])
    check = target.check
    if check is None or record.var != check.var.name:
        sink.emit(
            "FP702",
            f"{where}: no matching check predicate is derivable for "
            f"the target branch",
            function=fn.name,
            block=target_label,
            pc=record.target_pc,
        )
        return
    tested = snapshots.get(check.term, ValueSet.top())
    claimed = check.outcome_set(record.action == BranchAction.SET_T.value)
    if not tested.subset_of_outcome(claimed):
        sink.emit(
            "FP703",
            f"{where}: under the declared witness the checked value "
            f"reaches {tested}, which does not force outcome set "
            f"{claimed} — the claimed range is laundered through an "
            f"unproven pruned merge",
            function=fn.name,
            block=target_label,
            pc=record.target_pc,
        )


def _witness_restricted_mfp(
    summaries: Dict[str, BlockSummary],
    seeds: Dict[str, Env],
    witness: Set[Edge],
) -> Dict[str, Env]:
    """The MFP that may prune *only* the declared witness edges.

    Identical worklist/join/widen discipline to
    :func:`repro.staticcheck.mfp.solve_range_mfp`, with one deliberate
    difference: a conditional edge is dropped only when the witness
    declares it.  Every other edge propagates — an infeasible one with
    :func:`_relaxed_refinement`, which applies each direction-implied
    constraint that does not empty a binding but never produces the
    empty environment — so undeclared pruning can never carry the
    proof."""
    states: Dict[str, Env] = dict(seeds)
    join_counts: Dict[str, int] = {}
    worklist: List[str] = list(seeds)
    while worklist:
        label = worklist.pop()
        summary = summaries[label]
        env_out, snapshots = transfer_block(summary, states[label])
        if summary.is_return:
            continue
        edges: List[Tuple[str, Env]] = []
        if summary.jump_target is not None:
            edges.append((summary.jump_target, env_out))
        else:
            for direction in (True, False):
                if (label, direction) in witness:
                    continue  # the record claims this edge never runs
                edge_env = edge_environment(
                    summary, env_out, snapshots, direction
                )
                if edge_env is None:
                    # Infeasible but undeclared: propagate a relaxed
                    # refinement instead of pruning.
                    edge_env = _relaxed_refinement(
                        summary, env_out, direction
                    )
                next_label = (
                    summary.taken_target
                    if direction
                    else summary.fallthrough_target
                )
                edges.append((next_label, edge_env))
        for next_label, env in edges:
            if next_label not in states:
                states[next_label] = env
                worklist.append(next_label)
                continue
            joined = env_join(states[next_label], env)
            if joined == states[next_label]:
                continue
            count = join_counts.get(next_label, 0) + 1
            join_counts[next_label] = count
            if count > WIDEN_AFTER:
                joined = env_widen(states[next_label], joined)
            if joined != states[next_label]:
                states[next_label] = joined
                worklist.append(next_label)
    return states


def _relaxed_refinement(summary: BlockSummary, env_out: Env, taken: bool) -> Env:
    """The direction's constraint refinement without the infeasibility
    bail-outs.

    Used for edges the auditor finds infeasible but the record does not
    declare pruned.  Each direction-implied constraint is intersected
    in — *including* ones that empty a binding.  An empty binding is a
    per-variable fact the auditor derives locally (along this edge that
    variable has no possible value) and it dissolves at the next join,
    so a transiently-infeasible edge cannot poison the accumulated
    fixpoint the way an unrefined environment would.  What the function
    never does is drop the edge: every *other* variable's range still
    flows, so an undeclared prune whose purpose was to stop some other
    variable's hostile range cannot be silently re-enacted — deleting
    that witness entry surfaces as ``FP703``."""
    env: Env = dict(env_out)
    for var, outcome in summary.constraints.get(taken, ()):
        env_set(env, var, env_get(env, var).intersect_outcome(outcome))
    return env
