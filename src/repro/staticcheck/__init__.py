"""Static soundness auditing and diagnostics for the IPDS toolchain.

The subsystem hosts three pass families behind one diagnostics engine:

* ``correlation-audit`` / ``image-audit`` — an independent reproof
  that every emitted BAT action holds on all feasible paths (the
  paper's zero-false-positive guarantee), plus binary image integrity;
* ``dead-branch`` — infeasible/dead branch and unreachable code
  warnings from fixpoint range reasoning;
* ``ir-verify`` — structural IR validation (absorbed from
  ``ir/validate.py``).

Entry points: :func:`run_passes` (programmatic), ``repro audit`` and
``repro lint`` (CLI), and ``compile_program(..., check=True)``.
"""

from .audit import audit_image, audit_program
from .coverage import coverage_report
from .deadcode import find_dead_branches
from .detectability import (
    DetectabilityAnalysis,
    POSSIBLY_DETECTED,
    PROVEN_DETECTED,
    PROVEN_UNDETECTED,
    predict_detectability,
)
from .feasaudit import audit_feasible
from .interproc import audit_interproc
from .diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticSink,
    Severity,
    Span,
    StaticCheckError,
    errors_in,
    max_severity,
)
from .emit import (
    diagnostics_to_json,
    diagnostics_to_sarif,
    json_report,
    render_text,
    sarif_report,
    write_output,
)
from .irverify import verify_function_diagnostics, verify_module_diagnostics
from .registry import (
    AUDIT_PASSES,
    COVERAGE_PASSES,
    LINT_PASSES,
    PASSES,
    PREDICT_PASSES,
    CheckPass,
    pass_by_name,
    run_passes,
)

__all__ = [
    "AUDIT_PASSES",
    "CODES",
    "COVERAGE_PASSES",
    "CheckPass",
    "Diagnostic",
    "DiagnosticSink",
    "DetectabilityAnalysis",
    "LINT_PASSES",
    "PASSES",
    "POSSIBLY_DETECTED",
    "PREDICT_PASSES",
    "PROVEN_DETECTED",
    "PROVEN_UNDETECTED",
    "Severity",
    "Span",
    "StaticCheckError",
    "audit_feasible",
    "audit_image",
    "audit_interproc",
    "audit_program",
    "coverage_report",
    "diagnostics_to_json",
    "diagnostics_to_sarif",
    "errors_in",
    "find_dead_branches",
    "json_report",
    "max_severity",
    "pass_by_name",
    "predict_detectability",
    "render_text",
    "run_passes",
    "sarif_report",
    "verify_function_diagnostics",
    "verify_module_diagnostics",
    "write_output",
]
