"""Diagnostic renderers: text, JSON, and SARIF 2.1.0.

All three are deterministic for a given diagnostic list (sorted
output, no timestamps, fixed tool metadata), so snapshot tests and CI
artifact diffs are stable.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

from .diagnostics import CODES, Diagnostic, Severity

TOOL_NAME = "repro-staticcheck"
TOOL_VERSION = "1.0.0"

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.NOTE: "note",
}


def render_text(diagnostics: List[Diagnostic]) -> str:
    """One line per finding plus a severity tally."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    lines = [str(d) for d in ordered]
    counts = {s: 0 for s in Severity}
    for diag in diagnostics:
        counts[diag.severity] += 1
    lines.append(
        f"{counts[Severity.ERROR]} error(s), "
        f"{counts[Severity.WARNING]} warning(s), "
        f"{counts[Severity.NOTE]} note(s)"
    )
    return "\n".join(lines)


def diagnostics_to_json(diagnostics: List[Diagnostic]) -> str:
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    payload = {
        "version": 1,
        "tool": TOOL_NAME,
        "diagnostics": [d.to_dict() for d in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _sarif_run(diagnostics: List[Diagnostic], artifact: str) -> Dict[str, Any]:
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    used_codes = sorted({d.code for d in ordered})
    rule_index = {code: i for i, code in enumerate(used_codes)}
    rules = [
        {
            "id": code,
            "shortDescription": {"text": CODES[code].title},
            "defaultConfiguration": {
                "level": _SARIF_LEVELS[CODES[code].severity]
            },
        }
        for code in used_codes
    ]
    results: List[Dict[str, Any]] = []
    for diag in ordered:
        logical = diag.span.function or "<module>"
        if diag.span.block is not None:
            logical += f"/{diag.span.block}"
        result: Dict[str, Any] = {
            "ruleId": diag.code,
            "ruleIndex": rule_index[diag.code],
            "level": _SARIF_LEVELS[diag.severity],
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": artifact}
                    },
                    "logicalLocations": [
                        {"fullyQualifiedName": logical}
                    ],
                }
            ],
        }
        if diag.span.pc is not None:
            result["properties"] = {"branchPc": diag.span.pc}
        results.append(result)
    return {
        "tool": {
            "driver": {
                "name": TOOL_NAME,
                "version": TOOL_VERSION,
                "rules": rules,
            }
        },
        "results": results,
    }


def diagnostics_to_sarif(
    diagnostics: List[Diagnostic], artifact: str = "<source>"
) -> str:
    """A single-run SARIF 2.1.0 log.

    ``artifact`` names the audited source (the program's
    ``source_name`` or a workload identifier); block/branch locations
    are carried as logical locations since the mini-C pipeline does not
    track source lines through lowering.
    """
    return sarif_report([(artifact, diagnostics)])


def sarif_report(groups: List[tuple]) -> str:
    """A SARIF 2.1.0 log with one run per ``(artifact, diagnostics)``
    group — how the CLI reports multi-workload audits."""
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            _sarif_run(diagnostics, artifact)
            for artifact, diagnostics in groups
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


def json_report(groups: List[tuple]) -> str:
    """Grouped JSON report (one entry per audited target)."""
    payload = {
        "version": 1,
        "tool": TOOL_NAME,
        "targets": [
            {
                "name": artifact,
                "diagnostics": [
                    d.to_dict()
                    for d in sorted(diagnostics, key=Diagnostic.sort_key)
                ],
            }
            for artifact, diagnostics in groups
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def write_output(text: str, path: str) -> None:
    """Write a rendered report to a file, or stdout for ``-``."""
    if path == "-":
        sys.stdout.write(text + "\n")
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
