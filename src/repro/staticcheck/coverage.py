"""Static protection-coverage report (pass: coverage).

Answers, without running anything, "how much of this program does the
IPDS actually watch?" — per function, the fraction of conditional
branches the BCV verifies (``COV601``), one warning per unprotected
branch saying *why* it is unprotected (``COV602``), and whole-program
totals including the detectable tamper surface (``COV603``).

A branch is protected when at least one ``SET_T``/``SET_NT`` action
predicts it and the BCV verifies its slot; a tamper point is a
variable whose corruption between a prediction and its check raises an
alarm — i.e. a checked variable of a protected branch.  The pass is
informational (notes and warnings, never errors): partial coverage is
the expected state of the Figure-5 construction, not a defect.
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..analysis.alias import analyze_aliases
from ..analysis.branch_info import analyze_branches
from ..analysis.defs import analyze_definitions
from ..analysis.purity import PurityResult, analyze_purity
from ..correlation.actions import BranchAction
from ..correlation.provenance import REASON_INTERPROC
from ..ir.function import IRModule
from .diagnostics import Diagnostic, DiagnosticSink

COVERAGE_PASS = "coverage"

_SET_ACTIONS = (BranchAction.SET_T, BranchAction.SET_NT)


def coverage_report(
    program, purity: Optional[PurityResult] = None
) -> List[Diagnostic]:
    """Protection-coverage notes/warnings for a compiled program."""
    sink = DiagnosticSink(COVERAGE_PASS)
    module: IRModule = program.module
    if purity is None:
        analyze_aliases(module)
        purity = analyze_purity(module)

    total_branches = 0
    total_protected = 0
    total_sets = 0
    total_interproc = 0
    tamper_points: Set[str] = set()

    for fn in module.functions:
        tables = program.tables.by_function.get(fn.name)
        if tables is None or not tables.branch_pcs:
            continue
        def_map, _ = analyze_definitions(fn, module, purity)
        facts_by_pc = analyze_branches(fn, def_map)
        block_of_pc = {
            block.terminator.address: block.label
            for block in fn.blocks
            if block.ends_in_cond_branch()
        }

        protected = [pc for pc in tables.branch_pcs if tables.is_checked(pc)]
        total_branches += len(tables.branch_pcs)
        total_protected += len(protected)
        total_sets += sum(
            1
            for entries in tables.bat.values()
            for _, action in entries
            if action in _SET_ACTIONS
        )
        total_interproc += sum(
            1
            for record in tables.provenance
            if record.reason == REASON_INTERPROC
        )
        for meta in tables.branch_meta:
            if meta.var_name is not None and tables.is_checked(meta.pc):
                tamper_points.add(meta.var_name)

        sink.emit(
            "COV601",
            f"{len(protected)}/{len(tables.branch_pcs)} conditional "
            f"branches are protected (BCV-verified)",
            function=fn.name,
        )
        for pc in tables.branch_pcs:
            if tables.is_checked(pc):
                continue
            sink.emit(
                "COV602",
                f"branch is unprotected: {_why_unprotected(facts_by_pc, pc)}",
                function=fn.name,
                block=block_of_pc.get(pc),
                pc=pc,
            )

    fraction = (
        100.0 * total_protected / total_branches if total_branches else 0.0
    )
    sink.emit(
        "COV603",
        f"{total_protected}/{total_branches} conditional branches "
        f"protected ({fraction:.1f}%); {total_sets} SET action(s), "
        f"{total_interproc} proved interprocedurally; "
        f"{len(tamper_points)} variable(s) are detectable tamper points",
    )
    return sink.diagnostics


def _why_unprotected(facts_by_pc, pc: int) -> str:
    """Classify why no prediction reaches this branch."""
    facts = facts_by_pc.get(pc)
    if facts is None or facts.check is None:
        return "no check predicate is derivable from its condition"
    correlated = any(
        inference.var == facts.check.var
        for other_pc, other in facts_by_pc.items()
        if other_pc != pc
        for inference in other.inferences
    )
    if not correlated:
        return (
            f"no other branch implies anything about {facts.check.var.name}"
        )
    return (
        f"every candidate prediction for {facts.check.var.name} was "
        f"killed by potential stores or conflicting inferences"
    )
