"""IR well-formedness verification as a diagnostics pass.

Absorbs the checks of the old ``ir/validate.py`` stub (which now wraps
this module) and extends them with call-graph consistency, CFG edge
agreement, and structural-unreachability warnings.  Unlike the old
raise-on-first-error verifier, every violation becomes a
:class:`~repro.staticcheck.diagnostics.Diagnostic`, so one run reports
all of them.

Checking is staged: dominance-based use-def verification only runs on
functions whose structure (terminators, targets, labels) checked out —
:class:`~repro.ir.dominators.DominatorTree` is not defensive against
malformed CFGs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.builder import BUILTINS
from ..ir.dominators import DominatorTree, instruction_dominates
from ..ir.function import BasicBlock, IRFunction, IRModule
from ..ir.instructions import (
    Call,
    CondBranch,
    Jump,
    Reg,
    Return,
    Terminator,
    Variable,
    defined_reg,
    used_regs,
)
from .diagnostics import Diagnostic, DiagnosticSink, Severity

PASS_NAME = "ir-verify"


def verify_module_diagnostics(module: IRModule) -> List[Diagnostic]:
    """Check every invariant and return all findings (errors first)."""
    sink = DiagnosticSink(PASS_NAME)
    global_vars = set(module.globals)
    for fn in module.functions:
        _check_function(sink, fn, global_vars, module)
    if module.finalized:
        _check_addresses(sink, module)
    return sink.diagnostics


def verify_function_diagnostics(fn: IRFunction) -> List[Diagnostic]:
    """Check one function with no module context (no call-graph or
    address checks; every variable is treated as in scope via frame)."""
    sink = DiagnosticSink(PASS_NAME)
    _check_function(sink, fn, set(), module=None)
    return sink.diagnostics


def _check_function(
    sink: DiagnosticSink,
    fn: IRFunction,
    global_vars: set,
    module: Optional[IRModule],
) -> None:
    if not fn.blocks:
        sink.emit("IR101", f"function {fn.name} has no blocks", function=fn.name)
        return
    errors_before = _error_count(sink)
    labels = {block.label for block in fn.blocks}
    frame = set(fn.frame_variables)
    definitions: Dict[Reg, Tuple[BasicBlock, int]] = {}

    for block in fn.blocks:
        if not block.instructions:
            sink.emit("IR102", "block has no instructions",
                      function=fn.name, block=block.label)
            continue
        for index, instruction in enumerate(block.instructions):
            is_last = index == len(block.instructions) - 1
            if isinstance(instruction, Terminator) != is_last:
                sink.emit(
                    "IR103",
                    f"terminator misplaced at index {index}",
                    function=fn.name,
                    block=block.label,
                )
            reg = defined_reg(instruction)
            if reg is not None:
                if reg in definitions:
                    sink.emit(
                        "IR104",
                        f"register {reg} redefined",
                        function=fn.name,
                        block=block.label,
                    )
                else:
                    definitions[reg] = (block, index)
            var = getattr(instruction, "var", None)
            if isinstance(var, Variable):
                if var not in frame and var not in global_vars:
                    sink.emit(
                        "IR105",
                        f"reference to foreign variable {var}",
                        function=fn.name,
                        block=block.label,
                    )
            if isinstance(instruction, Call) and module is not None:
                _check_call(sink, fn, block, instruction, module)
        last = block.instructions[-1]
        if isinstance(last, Jump):
            targets = [last.target]
        elif isinstance(last, CondBranch):
            targets = [last.taken, last.fallthrough]
        elif isinstance(last, Return):
            targets = []
            if last.value is not None and not fn.returns_value:
                sink.emit(
                    "IR106",
                    f"void function {fn.name} returns a value",
                    function=fn.name,
                    block=block.label,
                )
        else:
            targets = None  # no terminator: IR103 already emitted
        if targets:
            for target in targets:
                if target not in labels:
                    sink.emit(
                        "IR107",
                        f"jump to unknown block {target!r}",
                        function=fn.name,
                        block=block.label,
                    )
        if targets is not None and module is not None and module.finalized:
            _check_edges(sink, fn, block, targets)

    structurally_clean = _error_count(sink) == errors_before
    if structurally_clean:
        _check_reachability(sink, fn)
        _check_defs_dominate_uses(sink, fn, definitions)


def _check_call(
    sink: DiagnosticSink,
    fn: IRFunction,
    block: BasicBlock,
    call: Call,
    module: IRModule,
) -> None:
    if module.has_function(call.callee):
        callee = module.function(call.callee)
        arity, returns = len(callee.params), callee.returns_value
    elif call.callee in BUILTINS:
        arity, returns = BUILTINS[call.callee]
    else:
        sink.emit(
            "IR111",
            f"call to unknown function {call.callee!r}",
            function=fn.name,
            block=block.label,
        )
        return
    if len(call.args) != arity:
        sink.emit(
            "IR112",
            f"{call.callee!r} expects {arity} argument(s), "
            f"got {len(call.args)}",
            function=fn.name,
            block=block.label,
        )
    if call.dest is not None and not returns:
        sink.emit(
            "IR112",
            f"void function {call.callee!r} used as a value",
            function=fn.name,
            block=block.label,
        )


def _check_edges(
    sink: DiagnosticSink, fn: IRFunction, block: BasicBlock, targets: List[str]
) -> None:
    """Stored pred/succ lists must agree with the terminators."""
    succ_labels = [succ.label for succ in block.succs]
    if succ_labels != targets:
        sink.emit(
            "IR113",
            f"successor list {succ_labels} disagrees with "
            f"terminator targets {targets}",
            function=fn.name,
            block=block.label,
        )
        return
    for succ in block.succs:
        if block not in succ.preds:
            sink.emit(
                "IR113",
                f"{succ.label} is a successor but does not list "
                f"{block.label} as a predecessor",
                function=fn.name,
                block=block.label,
            )


def _check_reachability(sink: DiagnosticSink, fn: IRFunction) -> None:
    """Warn about blocks no terminator path from entry can reach.

    Walks terminator targets directly, so it works on functions whose
    pred/succ lists were never computed.
    """
    reached = set()
    stack = [fn.entry.label]
    while stack:
        label = stack.pop()
        if label in reached:
            continue
        reached.add(label)
        last = fn.block(label).instructions[-1]
        if isinstance(last, Jump):
            stack.append(last.target)
        elif isinstance(last, CondBranch):
            stack.extend((last.taken, last.fallthrough))
    for block in fn.blocks:
        if block.label not in reached:
            sink.emit(
                "IR114",
                "block is unreachable from the function entry",
                function=fn.name,
                block=block.label,
            )


def _check_defs_dominate_uses(
    sink: DiagnosticSink,
    fn: IRFunction,
    definitions: Dict[Reg, Tuple[BasicBlock, int]],
) -> None:
    tree = DominatorTree(fn)
    for block in fn.blocks:
        for index, instruction in enumerate(block.instructions):
            for reg in used_regs(instruction):
                if reg not in definitions:
                    sink.emit(
                        "IR108",
                        f"use of undefined register {reg}",
                        function=fn.name,
                        block=block.label,
                    )
                    continue
                def_block, def_index = definitions[reg]
                if def_block is block and def_index >= index:
                    sink.emit(
                        "IR109",
                        f"{reg} used before its definition",
                        function=fn.name,
                        block=block.label,
                    )
                elif not instruction_dominates(
                    fn, tree, def_block, def_index, block, index
                ):
                    sink.emit(
                        "IR109",
                        f"definition of {reg} does not dominate its use",
                        function=fn.name,
                        block=block.label,
                    )


def _check_addresses(sink: DiagnosticSink, module: IRModule) -> None:
    addresses = [
        i.address for fn in module.functions for i in fn.instructions()
    ]
    if any(a < 0 for a in addresses):
        sink.emit("IR110", "finalized module has unassigned addresses")
        return
    if sorted(addresses) != addresses or len(set(addresses)) != len(addresses):
        sink.emit("IR110", "instruction addresses are not strictly increasing")


def _error_count(sink: DiagnosticSink) -> int:
    return sum(1 for d in sink.diagnostics if d.severity is Severity.ERROR)
