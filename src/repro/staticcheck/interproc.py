"""Interprocedural suppression audit (pass: interproc-audit).

At ``--opt 2`` the builder keeps a ``SET_T``/``SET_NT`` entry alive
across a branch-free region whose only definitions of the checked
variable are calls, on the strength of callee transfer summaries
(:mod:`repro.analysis.summaries`).  Each surviving entry carries an
``interproc`` provenance record with the summary text that justified
it.  This pass re-proves every such record from the auditor's *own*
re-derived summaries (:mod:`repro.staticcheck.ipsummaries`) and checks
the inverse direction too:

* ``IP501`` — an ``interproc`` provenance record does not correspond
  to a live BAT SET entry (tampered or stale sidecar);
* ``IP502`` — a suppression is not provable from the re-derived
  summaries: the region's definition sites are not all calls, a callee
  transfer fails to preserve the claimed outcome set, or the record's
  summary text differs from the independently rendered canonical one;
* ``IP503`` — a SET entry survives a region that contains definition
  sites of the checked variable *without* ``interproc`` or
  ``feasible-path`` provenance (the kills-win rule was bypassed
  silently; feasible-path survivals are re-proved by the ``FP7xx``
  pass instead).

The shared trust base with the builder is the may-write model (alias
sets, purity, :class:`~repro.analysis.defs.DefinitionMap`); the
transfer summaries themselves and the preservation argument are
recomputed here from the forward block walk.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..analysis.alias import analyze_aliases
from ..analysis.defs import DefinitionMap
from ..analysis.purity import PurityResult, analyze_purity
from ..correlation.actions import BranchAction
from ..correlation.provenance import (
    REASON_FEASIBLE,
    REASON_INTERPROC,
    ActionProvenance,
)
from ..correlation.tables import FunctionTables
from ..ir.cfg import regions_by_edge
from ..ir.function import IRFunction, IRModule
from ..ir.instructions import Call, VarKind
from .diagnostics import Diagnostic, DiagnosticSink
from .facts import BlockSummary, summarize_function
from .ipsummaries import IPSummaries, derive_ipsummaries

INTERPROC_PASS = "interproc-audit"

_SET_ACTIONS = (BranchAction.SET_T, BranchAction.SET_NT)


def audit_interproc(
    program, purity: Optional[PurityResult] = None
) -> List[Diagnostic]:
    """Audit every function's interprocedural suppressions."""
    sink = DiagnosticSink(INTERPROC_PASS)
    module: IRModule = program.module
    if purity is None:
        analyze_aliases(module)
        purity = analyze_purity(module)
    transfers = derive_ipsummaries(module, purity)
    for fn in module.functions:
        tables = program.tables.by_function.get(fn.name)
        if tables is None:
            continue  # correlation-audit reports COR210
        _audit_function(sink, fn, module, tables, purity, transfers)
    return sink.diagnostics


def _audit_function(
    sink: DiagnosticSink,
    fn: IRFunction,
    module: IRModule,
    tables: FunctionTables,
    purity: PurityResult,
    transfers: IPSummaries,
) -> None:
    # Structural preconditions (hash collisions, PC drift) belong to the
    # correlation audit; without them slot identities are meaningless,
    # so bail rather than report nonsense here.
    ir_pcs = tuple(sorted(b.address for b in fn.cond_branches()))
    if tuple(sorted(tables.branch_pcs)) != ir_pcs:
        return
    slots = {tables.slot_of(pc) for pc in tables.branch_pcs}
    if len(slots) != len(tables.branch_pcs):
        return

    def_map = DefinitionMap(fn, module, purity)
    summaries = summarize_function(fn, def_map)
    label_of_pc: Dict[int, str] = {
        summary.branch_pc: summary.label
        for summary in summaries.values()
        if summary.branch_pc is not None
    }
    region_of: Dict = {}
    for edge, region in regions_by_edge(fn).items():
        pc = fn.block(edge.block_label).terminator.address
        region_of[(pc, edge.taken)] = region

    # -- IP501 / IP502: every interproc record must back a live SET
    # entry and re-prove from scratch --------------------------------
    for record in tables.provenance:
        if record.reason != REASON_INTERPROC:
            continue
        target_slot = tables.slot_of(record.target_pc)
        live = record.action in (
            BranchAction.SET_T.value,
            BranchAction.SET_NT.value,
        ) and any(
            entry_target == target_slot and action.value == record.action
            for entry_target, action in tables.actions_for(
                record.source_pc, record.taken
            )
        )
        if not live:
            sink.emit(
                "IP501",
                f"interproc record claims ({record.source_block}, "
                f"{record.direction}) -> {record.action} "
                f"{record.target_block}, but no such BAT entry is live",
                function=fn.name,
                block=record.source_block,
                pc=record.source_pc,
            )
            continue
        witness = _reprove_suppression(
            fn, def_map, summaries, label_of_pc, region_of, transfers, record
        )
        if witness is not None:
            sink.emit(
                "IP502",
                f"suppressed kill ({record.source_block}, "
                f"{record.direction}) -> {record.action} "
                f"{record.target_block} is not re-provable: {witness}",
                function=fn.name,
                block=record.target_block,
                pc=record.target_pc,
            )

    # -- IP503: no SET survives a clobbered region uncredited --------
    for (source_slot, taken), entries in sorted(tables.bat.items()):
        source_pc = tables.pc_of_slot(source_slot)
        if source_pc is None:
            continue
        region = region_of.get((source_pc, taken))
        if region is None:
            continue
        for target_slot, action in entries:
            if action not in _SET_ACTIONS:
                continue
            target_pc = tables.pc_of_slot(target_slot)
            if target_pc is None or target_pc not in label_of_pc:
                continue
            check = summaries[label_of_pc[target_pc]].check
            if check is None:
                continue
            sites = [
                site
                for site in def_map.of_var(check.var)
                if site.block_label in region
            ]
            if not sites:
                continue
            record = tables.provenance_for(source_pc, taken, target_pc)
            if record is None or record.reason not in (
                REASON_INTERPROC,
                REASON_FEASIBLE,
            ):
                sink.emit(
                    "IP503",
                    f"action {action.value} survives although the "
                    f"direction's branch-free region holds "
                    f"{len(sites)} potential store(s) to "
                    f"{check.var.name} — no interprocedural proof is "
                    f"on record (kills-win rule bypassed)",
                    function=fn.name,
                    block=label_of_pc[target_pc],
                    pc=target_pc,
                )


def _reprove_suppression(
    fn: IRFunction,
    def_map: DefinitionMap,
    summaries: Dict[str, BlockSummary],
    label_of_pc: Dict[int, str],
    region_of: Dict,
    transfers: IPSummaries,
    record: ActionProvenance,
) -> Optional[str]:
    """Re-prove one suppression; None on success, else a witness."""
    region = region_of.get((record.source_pc, record.taken))
    if region is None:
        return "the record's source is not a conditional edge"
    target_label = label_of_pc.get(record.target_pc)
    if target_label is None:
        return "the record's target is not a conditional branch"
    check = summaries[target_label].check
    if check is None:
        return "no check predicate is derivable for the target branch"
    var = check.var
    if record.var != var.name:
        return (
            f"the record names variable {record.var!r} but the check "
            f"reads {var.name!r}"
        )
    if var.kind is not VarKind.GLOBAL or var.is_pointer or var.is_array:
        return f"{var.name} is not a global scalar (out of summary scope)"
    sites = [
        site for site in def_map.of_var(var) if site.block_label in region
    ]
    if not sites:
        return (
            "the region holds no definition site of the variable — "
            "nothing was suppressed, so the interproc reason is bogus"
        )
    callees = []
    for site in sites:
        if site.kind != "call":
            return (
                f"the region holds a non-call definition of {var.name} "
                f"({site}) — the kill may not be suppressed"
            )
        instruction = fn.block(site.block_label).instructions[site.index]
        if not isinstance(instruction, Call):
            return f"definition site {site} is not a call instruction"
        callees.append(instruction.callee)
    claimed = check.outcome_set(record.action == BranchAction.SET_T.value)
    for callee in sorted(set(callees)):
        transfer = transfers.transfer_for(callee, var)
        if callee not in transfers.by_function or not transfer.preserves(
            claimed
        ):
            return (
                f"callee {callee}'s re-derived transfer "
                f"({transfer.describe(var.name)}) does not preserve the "
                f"claimed outcome set {claimed}"
            )
    canonical = transfers.region_summary(tuple(callees), var.name, var)
    if record.summary != canonical:
        return (
            f"the record's summary text {record.summary!r} differs from "
            f"the independently rendered canonical summary {canonical!r}"
        )
    return None
