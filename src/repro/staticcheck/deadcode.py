"""Infeasible-/dead-branch and unreachable-code detection (pass:
dead-branch).

A whole-function forward range MFP from the entry block (everything
unknown) finds branches whose condition folds to a constant
(``DEAD401``/``DEAD402``), branch directions no reachable abstract
state permits (``DEAD403``), and blocks the range analysis proves
never execute (``DEAD404``).  All findings are warnings: dead code is
wasted protection coverage, not a soundness break — an infeasible
direction simply never fires its BAT actions.

At opt level 3 the lint additionally consumes the feasible-path facts
the table builder used: the entry-seeded per-edge propagation
(:func:`repro.analysis.feasible.entry_reachability`) prunes
conditional edges the correlation sharpening proves infeasible, so a
block the plain range MFP still reaches can become unreachable *along
feasible paths only* — ``DEAD405``, reported with the block so the
wasted coverage shows up exactly where the opt-3 analysis earned its
extra precision.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.alias import analyze_aliases
from ..analysis.branch_info import analyze_branches
from ..analysis.defs import DefinitionMap
from ..analysis.feasible import entry_reachability
from ..analysis.purity import PurityResult, analyze_purity
from ..ir.function import IRFunction, IRModule
from .diagnostics import Diagnostic, DiagnosticSink
from .facts import edge_environment, summarize_function, transfer_block
from .mfp import solve_range_mfp

PASS_NAME = "dead-branch"


def find_dead_branches(
    module: IRModule,
    purity: Optional[PurityResult] = None,
    opt_level: int = 0,
) -> List[Diagnostic]:
    sink = DiagnosticSink(PASS_NAME)
    if purity is None:
        analyze_aliases(module)
        purity = analyze_purity(module)
    for fn in module.functions:
        _check_function(sink, fn, module, purity, opt_level)
    return sink.diagnostics


def _check_function(
    sink: DiagnosticSink,
    fn: IRFunction,
    module: IRModule,
    purity: PurityResult,
    opt_level: int = 0,
) -> None:
    if not fn.blocks:
        return
    def_map = DefinitionMap(fn, module, purity)
    summaries = summarize_function(fn, def_map)
    states = solve_range_mfp(summaries, {fn.entry.label: {}})

    # Opt-3 refinement: blocks the range MFP reaches but the builder's
    # feasible-edge propagation does not.
    feasible_reached = None
    pruned_edges = frozenset()
    if opt_level >= 3:
        facts_by_pc = analyze_branches(fn, def_map)
        feasible_reached, pruned = entry_reachability(fn, def_map, facts_by_pc)
        pruned_edges = frozenset(pruned)

    for block in fn.blocks:
        summary = summaries[block.label]
        if block.label not in states:
            sink.emit(
                "DEAD404",
                "range analysis proves this block never executes",
                function=fn.name,
                block=block.label,
            )
            continue
        if feasible_reached is not None and block.label not in feasible_reached:
            # Reachable under plain range reasoning, but every path in
            # reaches it through an edge the opt-3 feasible-path
            # analysis pruned.
            culprits = sorted(
                f"{label}:{'T' if taken else 'NT'}"
                for label, taken in pruned_edges
            )
            sink.emit(
                "DEAD405",
                "block unreachable once feasible-path pruning removes "
                f"edges {', '.join(culprits)}; its branches can never "
                "fire their BAT actions at opt 3",
                function=fn.name,
                block=block.label,
            )
            continue
        if summary.branch_pc is None:
            continue
        if summary.const_outcome is not None:
            code = "DEAD401" if summary.const_outcome else "DEAD402"
            sink.emit(
                code,
                f"condition always evaluates "
                f"{'taken' if summary.const_outcome else 'not-taken'}; "
                f"the {'fallthrough' if summary.const_outcome else 'taken'} "
                f"edge is dead",
                function=fn.name,
                block=block.label,
                pc=summary.branch_pc,
            )
            continue
        env_out, snapshots = transfer_block(summary, states[block.label])
        for direction in (True, False):
            if edge_environment(summary, env_out, snapshots, direction) is None:
                sink.emit(
                    "DEAD403",
                    f"the {'taken' if direction else 'fallthrough'} "
                    f"direction is infeasible for every value reaching "
                    f"this branch",
                    function=fn.name,
                    block=block.label,
                    pc=summary.branch_pc,
                )
