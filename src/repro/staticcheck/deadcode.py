"""Infeasible-/dead-branch and unreachable-code detection (pass:
dead-branch).

A whole-function forward range MFP from the entry block (everything
unknown) finds branches whose condition folds to a constant
(``DEAD401``/``DEAD402``), branch directions no reachable abstract
state permits (``DEAD403``), and blocks the range analysis proves
never execute (``DEAD404``).  All findings are warnings: dead code is
wasted protection coverage, not a soundness break — an infeasible
direction simply never fires its BAT actions.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis.alias import analyze_aliases
from ..analysis.defs import DefinitionMap
from ..analysis.purity import PurityResult, analyze_purity
from ..ir.function import IRFunction, IRModule
from .diagnostics import Diagnostic, DiagnosticSink
from .facts import edge_environment, summarize_function, transfer_block
from .mfp import solve_range_mfp

PASS_NAME = "dead-branch"


def find_dead_branches(
    module: IRModule, purity: Optional[PurityResult] = None
) -> List[Diagnostic]:
    sink = DiagnosticSink(PASS_NAME)
    if purity is None:
        analyze_aliases(module)
        purity = analyze_purity(module)
    for fn in module.functions:
        _check_function(sink, fn, module, purity)
    return sink.diagnostics


def _check_function(
    sink: DiagnosticSink,
    fn: IRFunction,
    module: IRModule,
    purity: PurityResult,
) -> None:
    if not fn.blocks:
        return
    def_map = DefinitionMap(fn, module, purity)
    summaries = summarize_function(fn, def_map)
    states = solve_range_mfp(summaries, {fn.entry.label: {}})

    for block in fn.blocks:
        summary = summaries[block.label]
        if block.label not in states:
            sink.emit(
                "DEAD404",
                "range analysis proves this block never executes",
                function=fn.name,
                block=block.label,
            )
            continue
        if summary.branch_pc is None:
            continue
        if summary.const_outcome is not None:
            code = "DEAD401" if summary.const_outcome else "DEAD402"
            sink.emit(
                code,
                f"condition always evaluates "
                f"{'taken' if summary.const_outcome else 'not-taken'}; "
                f"the {'fallthrough' if summary.const_outcome else 'taken'} "
                f"edge is dead",
                function=fn.name,
                block=block.label,
                pc=summary.branch_pc,
            )
            continue
        env_out, snapshots = transfer_block(summary, states[block.label])
        for direction in (True, False):
            if edge_environment(summary, env_out, snapshots, direction) is None:
                sink.emit(
                    "DEAD403",
                    f"the {'taken' if direction else 'fallthrough'} "
                    f"direction is infeasible for every value reaching "
                    f"this branch",
                    function=fn.name,
                    block=block.label,
                    pc=summary.branch_pc,
                )
