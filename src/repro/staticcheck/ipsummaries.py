"""Auditor-side interprocedural transfer summaries, re-derived from
scratch.

The ``--opt 2`` builder suppresses call-only kills using
:mod:`repro.analysis.summaries`.  The auditor must not take those
summaries on faith: this module re-derives equivalent per-function
transfer facts from the *auditor's own* forward block walk
(:func:`repro.staticcheck.facts.summarize_block` steps), sharing no
derivation code with the builder.  Matched per-block precision on both
sides is deliberate — the audit must be able to re-prove exactly what
the builder proved, no more and no less.

Two consumers:

* the correlation audit's range MFP uses :meth:`IPSummaries.call_image`
  to push environments *through* call steps instead of clobbering to
  top — sound at every opt level, since summaries only add precision;
* the interproc audit (``IP5xx``) uses :meth:`IPSummaries.preserves`
  and :meth:`IPSummaries.region_summary` to re-prove each suppression
  and to re-render the canonical provenance text independently.

The call image must handle *iterated* writes (a loop in the callee, or
several call sites in a row): a delta hull ``[lo, hi]`` is first closed
under repetition — any negative delta closes to ``-inf``, any positive
one to ``+inf`` — before being added to the incoming set.  The builder
side needs no closure for its preservation proof (that argument is
inductive per write), but an *image* states where the value can end up
after any number of writes, so the closure is load-bearing here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set, Tuple

from ..analysis.branch_info import OutcomeSet
from ..analysis.defs import analyze_definitions
from ..analysis.purity import PurityResult
from ..analysis.ranges import NEG_INF, POS_INF, Interval
from ..ir.function import IRModule
from ..ir.instructions import VarKind, Variable
from .domain import ValueSet
from .facts import LoadTerm, summarize_function

#: Fixpoint rounds before interval widening (recursion backstop).
WIDEN_AFTER = 8


@dataclass(frozen=True)
class IPTransfer:
    """What one function may write to one global: hull of stored
    constants, hull of self-relative deltas, or top."""

    const_hull: Optional[Interval] = None
    delta_hull: Optional[Interval] = None
    top: bool = False

    @staticmethod
    def top_transfer() -> "IPTransfer":
        return IPTransfer(top=True)

    @property
    def is_identity(self) -> bool:
        return not self.top and self.const_hull is None and self.delta_hull is None

    def join(self, other: "IPTransfer") -> "IPTransfer":
        if self.top or other.top:
            return IPTransfer.top_transfer()
        return IPTransfer(
            const_hull=_hull_join(self.const_hull, other.const_hull),
            delta_hull=_hull_join(self.delta_hull, other.delta_hull),
        )

    def widen_against(self, newer: "IPTransfer") -> "IPTransfer":
        if self.top or newer.top:
            return IPTransfer.top_transfer()
        old_c, new_c = self.const_hull, newer.const_hull
        old_d, new_d = self.delta_hull, newer.delta_hull
        return IPTransfer(
            const_hull=(
                _hull_join(old_c, new_c)
                if old_c is None or new_c is None
                else old_c.widen_against(new_c)
            ),
            delta_hull=(
                _hull_join(old_d, new_d)
                if old_d is None or new_d is None
                else old_d.widen_against(new_d)
            ),
        )

    def preserves(self, outcome: OutcomeSet) -> bool:
        """Inductive preservation: every single write maps a value in
        ``outcome`` back into ``outcome`` (see the builder-side twin in
        :mod:`repro.analysis.summaries` for the full argument)."""
        if self.top:
            return False
        if self.const_hull is not None and not self.const_hull.is_empty:
            if not outcome.superset_of(self.const_hull):
                return False
        delta = self.delta_hull
        if delta is not None and not delta.is_empty:
            if outcome.interval is None:
                return delta.lo == 0 and delta.hi == 0
            interval = outcome.interval
            if interval.is_empty:
                return False
            if interval.lo != NEG_INF and delta.lo < 0:
                return False
            if interval.hi != POS_INF and delta.hi > 0:
                return False
        return True

    def delta_closure(self) -> Interval:
        """Closure of the delta hull under repetition: the set of total
        displacements after any number of affine writes."""
        delta = self.delta_hull
        if delta is None or delta.is_empty:
            return Interval.point(0)
        return Interval(
            0 if delta.lo >= 0 else NEG_INF,
            0 if delta.hi <= 0 else POS_INF,
        )

    def image(self, values: ValueSet) -> ValueSet:
        """Over-approximate the variable's value set after the call.

        The call *may* write (sites are weak), so the incoming set is
        always part of the result; affine writes add the repetition
        closure; constant writes land in the const hull and may then be
        shifted further by more affine writes.
        """
        if self.is_identity:
            return values
        if self.top:
            return ValueSet.top()
        closure = self.delta_closure()
        result = values
        if self.delta_hull is not None and not self.delta_hull.is_empty:
            result = result.join(_shift_set(values, closure))
        if self.const_hull is not None and not self.const_hull.is_empty:
            landed = ValueSet(
                Interval(
                    self.const_hull.lo + closure.lo,
                    self.const_hull.hi + closure.hi,
                )
            )
            result = result.join(landed)
        return result

    def describe(self, var_name: str) -> str:
        """Canonical summary grammar — must render byte-identically to
        the builder side (:meth:`repro.analysis.summaries.VarTransfer
        .describe`); the interproc audit compares the two strings."""
        if self.top:
            return f"{var_name}' unbounded"
        parts = []
        if self.const_hull is not None and not self.const_hull.is_empty:
            parts.append(f"{var_name}' in {self.const_hull}")
        if self.delta_hull is not None and not self.delta_hull.is_empty:
            parts.append(f"{var_name}' = {var_name} + {self.delta_hull}")
        if not parts:
            return f"{var_name}' unchanged"
        return " or ".join(parts)


def _hull_join(a: Optional[Interval], b: Optional[Interval]) -> Optional[Interval]:
    if a is None:
        return b
    if b is None:
        return a
    return a.union_hull(b)


def _shift_set(values: ValueSet, delta: Interval) -> ValueSet:
    """``{v + d : v in values, d in delta}`` (hole smears away unless
    the shift is exactly zero)."""
    if delta.lo == 0 and delta.hi == 0:
        return values
    if values.is_empty:
        return values
    interval = values.interval
    return ValueSet(Interval(interval.lo + delta.lo, interval.hi + delta.hi))


def _is_summarized_global(var: Variable) -> bool:
    return var.kind is VarKind.GLOBAL and not var.is_pointer and not var.is_array


@dataclass
class _FnFacts:
    """One function's local atoms plus its call-step callees."""

    transfers: Dict[Variable, IPTransfer] = field(default_factory=dict)
    callees: Set[str] = field(default_factory=set)

    def merge_var(self, var: Variable, transfer: IPTransfer) -> None:
        current = self.transfers.get(var)
        self.transfers[var] = transfer if current is None else current.join(transfer)


@dataclass
class IPSummaries:
    """Re-derived whole-program transfer summaries.

    ``transfer_for`` is total: unknown callees (which includes builtins
    — they never produce call steps, so they are never queried with a
    variable they could write) come back as identity, and anything the
    derivation could not bound is already folded in as top.
    """

    by_function: Dict[str, Dict[Variable, IPTransfer]]

    def transfer_for(self, callee: str, var: Variable) -> IPTransfer:
        return self.by_function.get(callee, {}).get(var, IPTransfer())

    def call_image(self, callee: str, var: Variable, values: ValueSet) -> ValueSet:
        if not _is_summarized_global(var):
            return ValueSet.top()
        if callee not in self.by_function:
            return ValueSet.top()  # unknown callee: conservative
        return self.transfer_for(callee, var).image(values)

    def preserves(self, callee: str, var: Variable, outcome: OutcomeSet) -> bool:
        if not _is_summarized_global(var):
            return False
        if callee not in self.by_function:
            return False
        return self.transfer_for(callee, var).preserves(outcome)

    def region_summary(
        self, callees: Tuple[str, ...], var_name: str, var: Variable
    ) -> str:
        """Canonical provenance text for one suppressed kill."""
        parts = []
        for callee in sorted(set(callees)):
            parts.append(
                f"{callee}: {self.transfer_for(callee, var).describe(var_name)}"
            )
        return "; ".join(parts)


def derive_ipsummaries(module: IRModule, purity: PurityResult) -> IPSummaries:
    """Re-derive transfer summaries from the auditor's block facts.

    Local atoms come from the forward walk's typed steps:

    * ``("store", g, ("const", c))`` — constant atom;
    * ``("store", g, ("affine", load(g), +1, d))`` — self-delta atom
      (any other term, sign, or spec is top);
    * ``("clobber", vars)`` — top for every affected global;
    * ``("call", callee, vars)`` — a call-graph edge for the fixpoint.

    Propagation is the same union fixpoint as the builder's — callees
    before callers would converge in one round on a DAG; recursion
    iterates with widening after :data:`WIDEN_AFTER` rounds.
    """
    local: Dict[str, _FnFacts] = {}
    for fn in module.functions:
        def_map, _ = analyze_definitions(fn, module, purity)
        facts = _FnFacts()
        for summary in summarize_function(fn, def_map).values():
            for step in summary.steps:
                kind = step[0]
                if kind == "store":
                    _, var, spec = step
                    if not _is_summarized_global(var):
                        continue
                    facts.merge_var(var, _atom_of_spec(var, spec))
                elif kind == "call":
                    _, callee, affected = step
                    facts.callees.add(callee)
                elif kind == "clobber":
                    for var in step[1]:
                        if _is_summarized_global(var):
                            facts.merge_var(var, IPTransfer.top_transfer())
        local[fn.name] = facts

    summaries: Dict[str, Dict[Variable, IPTransfer]] = {
        name: dict(facts.transfers) for name, facts in local.items()
    }
    rounds = 0
    changed = True
    while changed:
        changed = False
        rounds += 1
        for name, facts in local.items():
            merged = dict(facts.transfers)
            for callee in sorted(facts.callees):
                for var, transfer in summaries.get(callee, {}).items():
                    current = merged.get(var)
                    merged[var] = (
                        transfer if current is None else current.join(transfer)
                    )
            if merged != summaries[name]:
                if rounds > WIDEN_AFTER:
                    for var, transfer in merged.items():
                        old = summaries[name].get(var)
                        if old is not None:
                            merged[var] = old.widen_against(transfer)
                summaries[name] = merged
                changed = True
    return IPSummaries(by_function=summaries)


def _atom_of_spec(var: Variable, spec: Tuple) -> IPTransfer:
    if spec[0] == "const":
        return IPTransfer(const_hull=Interval.point(spec[1]))
    if spec[0] == "affine":
        _, term, sign, offset = spec
        if isinstance(term, LoadTerm) and term.var == var and sign == 1:
            return IPTransfer(delta_hull=Interval.point(offset))
        return IPTransfer.top_transfer()
    return IPTransfer.top_transfer()
