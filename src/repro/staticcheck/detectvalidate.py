"""Campaign-validated soundness for the detectability prover.

The prover (:mod:`repro.staticcheck.detectability`) makes refutable
claims: ``DET801`` promises an alarm on *every* continuation, and
``DET803`` promises silence on every continuation.  This module is the
empirical gate — it joins those claims against the seeded Figure-7
campaign, attack by attack:

1. run the campaign (same seeds, same recipe as the benchmark) with
   the tamper-moment frame stack recorded on each outcome;
2. resolve each attack's corrupted word address back to the variable,
   word offset, and owning activation frame through the deterministic
   memory layout;
3. ask the prover for a verdict at exactly that tamper point
   (:meth:`DetectabilityAnalysis.attack_verdict`);
4. assert the two soundness directions — no ``DET801`` attack escaped
   the IPDS, no ``DET803`` attack raised an alarm — and report the
   static detection-rate lower bound (the share of control-flow-
   changing attacks at proven-detected points, which measured
   detection can only exceed).

On forensics campaigns the join also carries ``repro obs``'s per-alarm
attribution (the compile-time proof reason behind each detection), so
a verdict class can be broken down by *why* its alarms fired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.alias import analyze_aliases
from ..analysis.purity import analyze_purity
from ..attacks.campaign import AttackOutcome, WorkloadResult, run_workload_campaign
from ..forensics.observatory import primary_reason
from ..interp.state import STACK_BASE, MemoryMap
from ..ir.instructions import Variable
from ..pipeline import ProtectedProgram
from ..workloads.registry import Workload, get_workload, workload_names
from .detectability import (
    DetectabilityAnalysis,
    PROVEN_DETECTED,
    PROVEN_UNDETECTED,
    SiteFrame,
)

#: Verdict value used when an attack cannot be joined (tamper never
#: fired, or the address resolves to no mapped variable).
UNJOINED = "unjoined"


@dataclass(frozen=True)
class AttackJoin:
    """One attack's static verdict joined with its measured outcome."""

    index: int
    target_label: str
    address: int
    value: int
    verdict: str  # DET801 / DET802 / DET803 / "unjoined"
    fired: bool
    control_flow_changed: bool
    detected: bool
    #: Escaping-path witness when the verdict is DET802.
    witness: Tuple[str, ...] = ()
    #: ``repro obs`` attribution of the first alarm (forensics
    #: campaigns only; None otherwise or when undetected).
    reason: Optional[str] = None

    def to_dict(self) -> dict:
        record = {
            "index": self.index,
            "target": self.target_label,
            "address": self.address,
            "value": self.value,
            "verdict": self.verdict,
            "fired": self.fired,
            "control_flow_changed": self.control_flow_changed,
            "detected": self.detected,
        }
        if self.witness:
            record["witness"] = list(self.witness)
        if self.reason is not None:
            record["reason"] = self.reason
        return record


@dataclass
class WorkloadSoundness:
    """The joined campaign for one (workload, opt level)."""

    workload: str
    opt_level: int
    joins: List[AttackJoin] = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.joins)

    @property
    def changed(self) -> int:
        return sum(1 for j in self.joins if j.control_flow_changed)

    @property
    def detected(self) -> int:
        return sum(1 for j in self.joins if j.detected)

    def count(self, verdict: str) -> int:
        return sum(1 for j in self.joins if j.verdict == verdict)

    @property
    def det801_escapes(self) -> List[AttackJoin]:
        """Soundness violations: proven-detected attacks that escaped."""
        return [
            j
            for j in self.joins
            if j.verdict == PROVEN_DETECTED and not j.detected
        ]

    @property
    def det803_alarms(self) -> List[AttackJoin]:
        """Soundness violations: proven-undetected attacks that alarmed."""
        return [
            j
            for j in self.joins
            if j.verdict == PROVEN_UNDETECTED and j.detected
        ]

    @property
    def violations(self) -> List[AttackJoin]:
        return self.det801_escapes + self.det803_alarms

    @property
    def predicted_lower_bound_pct(self) -> float:
        """Static lower bound on the detected-of-changed rate: every
        DET801 attack is proven to alarm, and a detected attack has by
        definition changed control flow, so ``DET801 / changed`` can
        never exceed the measured rate."""
        if not self.changed:
            return 0.0
        return 100.0 * self.count(PROVEN_DETECTED) / self.changed

    @property
    def measured_pct_detected_of_changed(self) -> float:
        if not self.changed:
            return 0.0
        return 100.0 * self.detected / self.changed

    def reason_counts(self) -> Dict[str, Dict[str, int]]:
        """Per-verdict ``repro obs`` attribution histogram of the
        detected attacks (forensics campaigns only)."""
        counts: Dict[str, Dict[str, int]] = {}
        for join in self.joins:
            if not join.detected or join.reason is None:
                continue
            by_reason = counts.setdefault(join.verdict, {})
            by_reason[join.reason] = by_reason.get(join.reason, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "opt_level": self.opt_level,
            "total": self.total,
            "changed": self.changed,
            "detected": self.detected,
            "verdicts": {
                "DET801": self.count("DET801"),
                "DET802": self.count("DET802"),
                "DET803": self.count("DET803"),
                "unjoined": self.count(UNJOINED),
            },
            "predicted_lower_bound_pct": round(
                self.predicted_lower_bound_pct, 3
            ),
            "measured_pct_detected_of_changed": round(
                self.measured_pct_detected_of_changed, 3
            ),
            "det801_escapes": [j.to_dict() for j in self.det801_escapes],
            "det803_alarms": [j.to_dict() for j in self.det803_alarms],
            "reason_counts": self.reason_counts(),
        }


@dataclass
class SoundnessReport:
    """The full sweep: every workload at every requested opt level."""

    results: List[WorkloadSoundness] = field(default_factory=list)

    @property
    def violations(self) -> List[Tuple[str, int, AttackJoin]]:
        return [
            (r.workload, r.opt_level, j)
            for r in self.results
            for j in r.violations
        ]

    def avg_predicted_lower_bound_pct(self, opt_level: int) -> float:
        """Across-workload average of the per-workload bound at one opt
        level — directly comparable to the Figure-7
        ``avg_pct_detected_of_changed`` aggregate."""
        values = [
            r.predicted_lower_bound_pct
            for r in self.results
            if r.opt_level == opt_level
        ]
        return sum(values) / len(values) if values else 0.0

    def to_dict(self) -> dict:
        opt_levels = sorted({r.opt_level for r in self.results})
        return {
            "results": [r.to_dict() for r in self.results],
            "violations": len(self.violations),
            "predicted_lower_bound": {
                f"opt{level}": round(
                    self.avg_predicted_lower_bound_pct(level), 3
                )
                for level in opt_levels
            },
        }


def resolve_tamper_target(
    memory: MemoryMap,
    address: int,
    tamper_site: Optional[Tuple[Tuple[str, str, int, int], ...]],
) -> Optional[Tuple[Variable, int, Optional[int]]]:
    """Map a corrupted word address back to ``(variable, word offset,
    owning frame index)``.

    Globals resolve from the fixed layout (owner ``None``); stack words
    resolve against the frame bases recorded at the tamper moment.
    Returns ``None`` for an unmapped address (padding / dead stack).
    """
    if address < STACK_BASE:
        for var, base in memory.global_addresses.items():
            if base <= address < base + var.size:
                return var, address - base, None
        return None
    if not tamper_site:
        return None
    for depth, (fn_name, _block, _index, frame_base) in enumerate(tamper_site):
        layout = memory.frame_layouts.get(fn_name)
        if layout is None:
            continue
        if not (frame_base <= address < frame_base + layout.size):
            continue
        for var, offset in layout.offsets.items():
            base = frame_base + offset
            if base <= address < base + var.size:
                return var, address - base, depth
    return None


def join_outcomes(
    program: ProtectedProgram,
    outcomes: Sequence[AttackOutcome],
    workload_name: str,
    analysis: Optional[DetectabilityAnalysis] = None,
) -> List[AttackJoin]:
    """Attach a static verdict to each campaign outcome.

    Attacks whose tamper never fired, or whose address maps to no
    variable, join as ``"unjoined"`` — the prover makes no claim there
    (and the campaign marks them undetected by construction).
    """
    if analysis is None:
        analyze_aliases(program.module)
        purity = analyze_purity(program.module)
        analysis = DetectabilityAnalysis(program, purity)
    memory = MemoryMap(program.module)
    joins: List[AttackJoin] = []
    for outcome in outcomes:
        verdict = UNJOINED
        witness: Tuple[str, ...] = ()
        if outcome.fired and outcome.tamper_site:
            resolved = resolve_tamper_target(
                memory, outcome.address, outcome.tamper_site
            )
            if resolved is not None:
                var, word_offset, owner_frame = resolved
                frames: List[SiteFrame] = [
                    (fn, block, index)
                    for fn, block, index, _base in outcome.tamper_site
                ]
                verdict, witness = analysis.attack_verdict(
                    var,
                    word_offset,
                    outcome.value,
                    frames,
                    owner_frame,
                )
        reason: Optional[str] = None
        if outcome.detected and outcome.proof_reasons:
            reason = primary_reason(outcome.to_record(workload_name))
        joins.append(
            AttackJoin(
                index=outcome.index,
                target_label=outcome.target_label,
                address=outcome.address,
                value=outcome.value,
                verdict=verdict,
                fired=outcome.fired,
                control_flow_changed=outcome.control_flow_changed,
                detected=outcome.detected,
                witness=witness,
                reason=reason,
            )
        )
    return joins


def validate_workload(
    workload: Workload,
    opt_level: int = 0,
    attacks: int = 30,
    seed_prefix: str = "",
    jobs: int = 1,
    step_limit: int = 500_000,
    forensics: bool = True,
    result: Optional[WorkloadResult] = None,
) -> WorkloadSoundness:
    """Run (or reuse) one seeded campaign and join every attack.

    ``result`` short-circuits the campaign when the caller already ran
    it (the benchmark reuses its own sweep); it must come from the same
    seeds and opt level.
    """
    from ..pipeline import compile_program_cached

    program = compile_program_cached(
        workload.source, workload.name, opt_level
    )
    if result is None:
        result = run_workload_campaign(
            workload,
            attacks=attacks,
            seed_prefix=seed_prefix,
            step_limit=step_limit,
            opt_level=opt_level,
            jobs=jobs,
            forensics=forensics,
        )
    return WorkloadSoundness(
        workload=workload.name,
        opt_level=opt_level,
        joins=join_outcomes(program, result.attacks, workload.name),
    )


def validate_registry(
    opt_levels: Sequence[int] = (0, 1, 2, 3),
    attacks: int = 30,
    seed_prefix: str = "",
    jobs: int = 1,
    step_limit: int = 500_000,
    forensics: bool = True,
    names: Optional[Sequence[str]] = None,
) -> SoundnessReport:
    """The full soundness sweep: every registry workload at every
    requested opt level, same seeds throughout."""
    report = SoundnessReport()
    for name in names or workload_names():
        workload = get_workload(name)
        for opt_level in opt_levels:
            report.results.append(
                validate_workload(
                    workload,
                    opt_level=opt_level,
                    attacks=attacks,
                    seed_prefix=seed_prefix,
                    jobs=jobs,
                    step_limit=step_limit,
                    forensics=forensics,
                )
            )
    return report
