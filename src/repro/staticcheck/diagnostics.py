"""Typed diagnostics: stable codes, severities, and spans.

Every finding a static check produces is a :class:`Diagnostic` — a
stable machine-readable code (catalogued in ``docs/STATIC_CHECKS.md``),
a severity, a span naming the function/block/branch it concerns, and a
human-readable message.  Emitters in :mod:`repro.staticcheck.emit`
render lists of diagnostics as text, JSON, or SARIF; the CLI and CI
gate on the highest severity present.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..lang.errors import ReproError


class Severity(enum.Enum):
    """How bad a finding is.  ERROR means the zero-false-positive
    guarantee (or a structural invariant) is broken; WARNING is advisory
    (dead weight, unreachable code); NOTE is informational."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"

    @property
    def rank(self) -> int:
        return {"error": 2, "warning": 1, "note": 0}[self.value]

    def at_least(self, other: "Severity") -> bool:
        return self.rank >= other.rank


@dataclass(frozen=True)
class Span:
    """Where a diagnostic points: a function, optionally narrowed to a
    block and/or a branch PC."""

    function: Optional[str] = None
    block: Optional[str] = None
    pc: Optional[int] = None

    def __str__(self) -> str:
        parts = [self.function or "<module>"]
        if self.block is not None:
            parts.append(self.block)
        where = "/".join(parts)
        if self.pc is not None:
            where += f"@{self.pc:#x}"
        return where


@dataclass(frozen=True)
class CodeInfo:
    """Catalog entry for one diagnostic code."""

    code: str
    severity: Severity
    title: str


#: The full catalog of stable diagnostic codes.  ``docs/STATIC_CHECKS.md``
#: is generated from (and must stay in sync with) this table; SARIF
#: emitters use it for the rule index.
CODES: Dict[str, CodeInfo] = {
    info.code: info
    for info in [
        # -- IR structural verification (pass: ir-verify) ---------------
        CodeInfo("IR101", Severity.ERROR, "function has no blocks"),
        CodeInfo("IR102", Severity.ERROR, "empty basic block"),
        CodeInfo("IR103", Severity.ERROR, "misplaced or missing terminator"),
        CodeInfo("IR104", Severity.ERROR, "register redefined"),
        CodeInfo("IR105", Severity.ERROR, "reference to foreign variable"),
        CodeInfo("IR106", Severity.ERROR, "void function returns a value"),
        CodeInfo("IR107", Severity.ERROR, "branch to unknown block"),
        CodeInfo("IR108", Severity.ERROR, "use of undefined register"),
        CodeInfo("IR109", Severity.ERROR, "definition does not dominate use"),
        CodeInfo("IR110", Severity.ERROR, "instruction addresses not strictly increasing"),
        CodeInfo("IR111", Severity.ERROR, "call to unknown function"),
        CodeInfo("IR112", Severity.ERROR, "call signature mismatch"),
        CodeInfo("IR113", Severity.ERROR, "CFG edge lists disagree with terminators"),
        CodeInfo("IR114", Severity.WARNING, "block unreachable from entry"),
        # -- correlation soundness audit (pass: correlation-audit) -------
        CodeInfo("COR201", Severity.ERROR, "branch PC hash collision"),
        CodeInfo("COR202", Severity.ERROR, "BCV marks a non-branch slot"),
        CodeInfo("COR203", Severity.ERROR, "BAT event key is not a branch slot"),
        CodeInfo("COR204", Severity.ERROR, "BAT action targets a non-branch slot"),
        CodeInfo("COR205", Severity.ERROR, "BAT action not provable on all feasible paths"),
        CodeInfo("COR206", Severity.ERROR, "checked branch has no derivable check predicate"),
        CodeInfo("COR207", Severity.ERROR, "hash parameters out of range for branch count"),
        CodeInfo("COR208", Severity.WARNING, "BAT action targets an unchecked slot"),
        CodeInfo("COR209", Severity.WARNING, "checked slot never set by any BAT action"),
        CodeInfo("COR210", Severity.ERROR, "table branch PCs disagree with the IR"),
        # -- binary image audit (pass: image-audit) ----------------------
        CodeInfo("IMG301", Severity.ERROR, "table image round-trip mismatch"),
        CodeInfo("IMG302", Severity.ERROR, "packed blob size disagrees with encoding accounting"),
        CodeInfo("IMG303", Severity.ERROR, "action encoding does not cover all actions"),
        CodeInfo("IMG304", Severity.ERROR, "provenance sidecar round-trip mismatch"),
        # -- runtime alarm forensics (repro explain / --forensics) -------
        CodeInfo("FOR501", Severity.ERROR, "runtime alarm traced to violated compiler correlation"),
        CodeInfo("FOR502", Severity.WARNING, "runtime alarm could not be fully explained"),
        # -- interprocedural suppression audit (pass: interproc-audit) ---
        CodeInfo("IP501", Severity.ERROR, "interproc provenance without a live BAT SET entry"),
        CodeInfo("IP502", Severity.ERROR, "suppressed kill not re-provable from re-derived summaries"),
        CodeInfo("IP503", Severity.ERROR, "SET action survives a clobbered region without interproc proof"),
        # -- feasible-path action audit (pass: feasible-audit) -----------
        CodeInfo("FP701", Severity.ERROR, "feasible-path provenance without a live BAT SET entry"),
        CodeInfo("FP702", Severity.ERROR, "pruned-edge witness not independently re-provable from the IR"),
        CodeInfo("FP703", Severity.ERROR, "claimed range laundered through an unproven pruned merge"),
        # -- static protection coverage (pass: coverage) -----------------
        CodeInfo("COV601", Severity.NOTE, "per-function protected-branch coverage"),
        CodeInfo("COV602", Severity.WARNING, "conditional branch is unprotected"),
        CodeInfo("COV603", Severity.NOTE, "program protection totals and tamper surface"),
        # -- infeasible / dead branch detection (pass: dead-branch) ------
        CodeInfo("DEAD401", Severity.WARNING, "branch condition is constant: always taken"),
        CodeInfo("DEAD402", Severity.WARNING, "branch condition is constant: never taken"),
        CodeInfo("DEAD403", Severity.WARNING, "branch direction statically infeasible"),
        CodeInfo("DEAD404", Severity.WARNING, "block unreachable under range analysis"),
        CodeInfo("DEAD405", Severity.WARNING, "block unreachable along feasible paths only"),
        # -- static tamper detectability (pass: detectability) -----------
        CodeInfo("DET801", Severity.NOTE, "tampering provably detected on every continuation"),
        CodeInfo("DET802", Severity.NOTE, "tampering possibly detected: an escaping path exists"),
        CodeInfo("DET803", Severity.NOTE, "tampering provably undetected: no branch depends on it"),
    ]
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one static check pass."""

    code: str
    severity: Severity
    message: str
    span: Span = field(default_factory=Span)
    pass_name: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        return CODES[self.code].title

    def sort_key(self):
        return (
            self.span.function or "",
            self.span.pc if self.span.pc is not None else -1,
            self.span.block or "",
            self.code,
            self.message,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "function": self.span.function,
            "block": self.span.block,
            "pc": self.span.pc,
            "pass": self.pass_name,
        }

    def __str__(self) -> str:
        return f"{self.code} {self.severity.value} {self.span}: {self.message}"


class DiagnosticSink:
    """Collector handed to each pass; stamps the pass name on entries."""

    def __init__(self, pass_name: str = ""):
        self.pass_name = pass_name
        self.diagnostics: List[Diagnostic] = []

    def emit(
        self,
        code: str,
        message: str,
        function: Optional[str] = None,
        block: Optional[str] = None,
        pc: Optional[int] = None,
        severity: Optional[Severity] = None,
    ) -> Diagnostic:
        diag = Diagnostic(
            code=code,
            severity=severity or CODES[code].severity,
            message=message,
            span=Span(function=function, block=block, pc=pc),
            pass_name=self.pass_name,
        )
        self.diagnostics.append(diag)
        return diag


def max_severity(diagnostics: List[Diagnostic]) -> Optional[Severity]:
    """The highest severity present, or None for an empty list."""
    if not diagnostics:
        return None
    return max((d.severity for d in diagnostics), key=lambda s: s.rank)


def errors_in(diagnostics: List[Diagnostic]) -> List[Diagnostic]:
    return [d for d in diagnostics if d.severity is Severity.ERROR]


class StaticCheckError(ReproError):
    """Raised by ``compile_program(..., check=True)`` when the auditor
    finds error-severity diagnostics in freshly emitted tables."""

    def __init__(self, diagnostics: List[Diagnostic]):
        self.diagnostics = diagnostics
        lines = [str(d) for d in diagnostics]
        super().__init__(
            "static audit failed with "
            f"{len(diagnostics)} error(s):\n" + "\n".join(lines)
        )
