"""Range MFP solver over block summaries.

A small worklist engine shared by the correlation auditor (seeded at
one firing edge, with propagation cut at overwriting edges) and the
dead-branch detector (seeded at the function entry, no cuts).  States
are abstract environments (variable -> :class:`ValueSet`); conditional
edges are refined by everything the branch direction implies and
dropped entirely when the direction contradicts the abstract state.
Widening after a bounded number of joins guarantees termination on
loops that keep growing a value.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .domain import Env, env_join, env_widen
from .facts import BlockSummary, edge_environment, transfer_block

#: Joins into one block before widening kicks in.
WIDEN_AFTER = 8

#: Hook deciding whether propagation stops at a conditional edge
#: (summary, direction) — the auditor cuts where the prediction is
#: overwritten.
CutHook = Callable[[BlockSummary, bool], bool]


def solve_range_mfp(
    summaries: Dict[str, BlockSummary],
    seeds: Dict[str, Env],
    should_cut: Optional[CutHook] = None,
    transfers=None,
) -> Dict[str, Env]:
    """Propagate seed environments to a fixpoint; returns the state at
    each reached block's entry (unreached blocks are absent).

    ``transfers`` is forwarded to :func:`transfer_block`: with it, call
    steps apply interprocedural summary images instead of clobbering to
    top."""
    states: Dict[str, Env] = dict(seeds)
    join_counts: Dict[str, int] = {}
    worklist: List[str] = list(seeds)
    while worklist:
        label = worklist.pop()
        summary = summaries[label]
        env_out, snapshots = transfer_block(summary, states[label], transfers)
        if summary.is_return:
            continue
        edges: List[Tuple[str, Env]] = []
        if summary.jump_target is not None:
            edges.append((summary.jump_target, env_out))
        else:
            for direction in (True, False):
                edge_env = edge_environment(summary, env_out, snapshots, direction)
                if edge_env is None:
                    continue  # direction impossible from this abstract state
                if should_cut is not None and should_cut(summary, direction):
                    continue
                next_label = (
                    summary.taken_target
                    if direction
                    else summary.fallthrough_target
                )
                edges.append((next_label, edge_env))
        for next_label, env in edges:
            if next_label not in states:
                states[next_label] = env
                worklist.append(next_label)
                continue
            joined = env_join(states[next_label], env)
            if joined == states[next_label]:
                continue
            count = join_counts.get(next_label, 0) + 1
            join_counts[next_label] = count
            if count > WIDEN_AFTER:
                joined = env_widen(states[next_label], joined)
            if joined != states[next_label]:
                states[next_label] = joined
                worklist.append(next_label)
    return states
