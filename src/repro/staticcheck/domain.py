"""Abstract value domain for the soundness auditor's range MFP.

The builder's subsumption test works over two set shapes (see
:mod:`repro.analysis.branch_info`): closed intervals, and punctured
lines (the non-interval side of ``==`` / ``!=``).  The auditor must be
able to *carry* both shapes along paths, so its lattice element is an
interval with at most one missing interior point:

    ValueSet(interval=[lo, hi], hole=q)   meaning   [lo, hi] \\ {q}

All operations over-approximate (the result always contains the exact
set), which is the direction soundness needs: the auditor proves a BAT
action correct by showing the over-approximated value set at the
checked branch still lies inside the claimed outcome set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.branch_info import OutcomeSet
from ..analysis.ranges import Interval
from ..ir.instructions import Variable


def _normalize(interval: Interval, hole: Optional[int]) -> "ValueSet":
    """Canonical form: drop holes outside the interval, convert holes at
    a finite endpoint into a tighter interval."""
    if interval.is_empty or hole is None or not interval.contains(hole):
        return ValueSet(interval, None)
    if interval.lo == interval.hi:  # single point minus itself
        return ValueSet(Interval.empty(), None)
    if hole == interval.lo:
        return ValueSet(Interval(interval.lo + 1, interval.hi), None)
    if hole == interval.hi:
        return ValueSet(Interval(interval.lo, interval.hi - 1), None)
    return ValueSet(interval, hole)


@dataclass(frozen=True)
class ValueSet:
    """An interval minus at most one interior point."""

    interval: Interval
    hole: Optional[int] = None

    # -- constructors ---------------------------------------------------

    @staticmethod
    def top() -> "ValueSet":
        return ValueSet(Interval.top(), None)

    @staticmethod
    def empty() -> "ValueSet":
        return ValueSet(Interval.empty(), None)

    @staticmethod
    def point(value: int) -> "ValueSet":
        return ValueSet(Interval.point(value), None)

    @staticmethod
    def from_outcome(outcome: OutcomeSet) -> "ValueSet":
        if outcome.interval is not None:
            return ValueSet(outcome.interval, None)
        return _normalize(Interval.top(), outcome.hole)

    # -- queries ---------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.interval.is_empty

    @property
    def is_top(self) -> bool:
        return self.interval.is_top and self.hole is None

    def contains(self, value: int) -> bool:
        return self.interval.contains(value) and value != self.hole

    def subset_of_outcome(self, outcome: OutcomeSet) -> bool:
        """True when every value in this set satisfies ``outcome`` —
        the auditor's proof obligation at the checked branch."""
        if self.is_empty:
            return True
        if outcome.interval is not None:
            # The hole cannot help unless it sits at an endpoint, and
            # normalization already folded endpoint holes away.
            return self.interval.subsumes(outcome.interval)
        return not self.interval.contains(outcome.hole) or self.hole == outcome.hole

    # -- lattice operations ----------------------------------------------

    def intersect(self, other: "ValueSet") -> "ValueSet":
        interval = self.interval.intersect(other.interval)
        # Exact intersection may puncture two points; keeping one is a
        # sound over-approximation.
        hole = self.hole if self.hole is not None else other.hole
        return _normalize(interval, hole)

    def intersect_outcome(self, outcome: OutcomeSet) -> "ValueSet":
        return self.intersect(ValueSet.from_outcome(outcome))

    def join(self, other: "ValueSet") -> "ValueSet":
        """Convex-hull union.  The hole survives only when both sides
        exclude it, which keeps equality correlations provable across
        joins of identical punctured sets."""
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        interval = self.interval.union_hull(other.interval)
        for candidate in (self.hole, other.hole):
            if candidate is None:
                continue
            if not self.contains(candidate) and not other.contains(candidate):
                return _normalize(interval, candidate)
        return ValueSet(interval, None)

    def widen(self, newer: "ValueSet") -> "ValueSet":
        """Widening for loop fixpoints: bounds that grew jump to ±inf."""
        interval = self.interval.widen_against(newer.interval)
        hole = self.hole if self.hole == newer.hole else None
        return _normalize(interval, hole)

    # -- transfer --------------------------------------------------------

    def affine_image(self, sign: int, offset: int) -> "ValueSet":
        """The set of ``sign * v + offset`` for ``v`` in this set."""
        interval = self.interval
        if sign == -1:
            interval = interval.negate()
        interval = interval.shift(offset)
        hole = None if self.hole is None else sign * self.hole + offset
        return _normalize(interval, hole)

    def __str__(self) -> str:
        if self.hole is None:
            return str(self.interval)
        return f"{self.interval}\\{{{self.hole}}}"


#: An abstract environment: variable -> value set; missing means top.
Env = Dict[Variable, ValueSet]


def env_get(env: Env, var: Variable) -> ValueSet:
    return env.get(var, ValueSet.top())


def env_set(env: Env, var: Variable, value: ValueSet) -> None:
    """Store a binding, keeping the dict sparse (top is implicit)."""
    if value.is_top:
        env.pop(var, None)
    else:
        env[var] = value


def env_join(a: Env, b: Env) -> Env:
    """Pointwise join; variables missing on either side are top."""
    joined: Env = {}
    for var in a.keys() & b.keys():
        env_set(joined, var, a[var].join(b[var]))
    return joined


def env_widen(old: Env, new: Env) -> Env:
    """Pointwise widening of ``new`` against the previous state."""
    widened: Env = {}
    for var in old.keys() & new.keys():
        env_set(widened, var, old[var].widen(new[var]))
    return widened


def env_is_infeasible(env: Env) -> bool:
    """An environment with any empty binding describes no concrete
    state — the edge that produced it is statically infeasible."""
    return any(value.is_empty for value in env.values())
