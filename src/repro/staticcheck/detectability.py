"""Static tamper-detectability prover (pass: detectability).

``repro predict`` answers Figure 7's question *before* running a
campaign: for a tamper point — a variable, a value region, and the
program point where the corruption lands — will the IPDS provably
alarm, possibly alarm, or provably stay silent?

Verdicts
========

``DET801 PROVEN_DETECTED``
    Every continuation from the tamper point raises an alarm.  Proved
    by an exhaustive *must-alarm walk*: starting from the landing
    point with the clean prefix's guaranteed BSV knowledge (a forward
    all-paths must dataflow over the BAT action tables), the prover
    walks every CFG path, forcing the direction of branches that test
    the corrupted variable (its memory now holds the tampered value)
    and crediting an alarm exactly where the runtime would — a
    BCV-checked branch whose tracked-definite expectation the walked
    direction contradicts.  A path ends in ``alarm`` or *escapes*
    (returns, may fault, may loop, or calls a function the prover
    cannot bound); ``DET801`` holds only when every path alarms.

``DET803 PROVEN_UNDETECTED``
    No continuation can alarm.  Proved by a module-wide dependence
    closure: if no conditional branch transitively depends on the
    variable's memory (through registers, direct and indirect
    accesses, calls and returns), the attacked trace commits exactly
    the clean run's branch events — and the clean run is alarm-free by
    the audited zero-false-positive guarantee.  Faults the corruption
    introduces (a tampered divisor) only *truncate* the trace, and a
    prefix of an alarm-free event stream is alarm-free.

``DET802 POSSIBLY_DETECTED``
    Everything else, with the first escaping path as a witness.

Proof obligations and the progress assumption
=============================================

``DET801`` additionally assumes the execution *progresses* to the
promised alarm: the walk escapes on any possible fault (unbounded
division), any call to a function not proved total (acyclic CFG and
call graph, no faultable division), and any cycle in the walked state
graph — but a run that exhausts the interpreter's global step or
call-depth budget before reaching the alarming branch would still
escape detection.  ``DESIGN.md`` §4h states the obligation precisely;
the seeded-campaign soundness harness
(:mod:`repro.staticcheck.detectvalidate`) is the empirical gate that
this never occurs on the workload registry.

Per-opt facts consumed: the BAT/BCV tables themselves (richer at opt
2/3, so statuses are definite more often and ``DET801`` grows), and at
opt 3 the builder's entry-seeded feasible-path propagation
(:func:`repro.analysis.feasible.entry_reachability`) prunes
clean-infeasible edges from the must dataflow — the clean prefix can
only have travelled feasible edges, so the prover starts the walk with
strictly more BSV knowledge.  The post-tamper walk itself never prunes:
attacked runs take clean-infeasible edges (that is what gets them
caught).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..analysis.branch_info import BranchFacts, analyze_branches
from ..analysis.defs import DefinitionMap
from ..analysis.feasible import entry_reachability
from ..analysis.purity import PurityResult
from ..correlation.actions import BranchAction, BranchStatus
from ..correlation.tables import FunctionTables
from ..ir.builder import BUILTINS
from ..ir.function import IRFunction
from ..ir.instructions import (
    BinOp,
    Call,
    CondBranch,
    Instruction,
    Jump,
    Load,
    LoadIndirect,
    Reg,
    Return,
    Store,
    StoreIndirect,
    Variable,
)
from .diagnostics import Diagnostic, DiagnosticSink

PASS_NAME = "detectability"

#: Walk state budget per tamper point; exceeding it escapes
#: (``state-cap``) rather than claiming anything.
MAX_WALK_STATES = 4096

#: Verdict names (the diagnostic codes double as stable identifiers).
PROVEN_DETECTED = "DET801"
POSSIBLY_DETECTED = "DET802"
PROVEN_UNDETECTED = "DET803"

#: One site frame: (function, block label, instruction index) — the
#: resume point of one activation when the corruption lands.
SiteFrame = Tuple[str, str, int]

#: Immutable BSV knowledge: sorted (slot, status value) pairs; absent
#: slots are UNKNOWN.
_BsvKey = Tuple[Tuple[int, str], ...]


# ----------------------------------------------------------------------
# Callee summaries: may-write sets and totality
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CalleeFacts:
    """What a call site must assume about one callee."""

    #: Variables the callee (transitively) may store to; meaningless
    #: when ``clobbers_all``.
    may_write: FrozenSet[Variable]
    clobbers_all: bool
    #: Proved to return without faulting on every input: acyclic CFG
    #: and call graph below it, and no division whose divisor is not a
    #: nonzero constant.  Calls to non-total callees escape the walk.
    total: bool

    def may_write_var(self, var: Variable) -> bool:
        return self.clobbers_all or var in self.may_write


def _cfg_successors(block_instructions: Sequence[Instruction]) -> List[str]:
    terminator = block_instructions[-1]
    if isinstance(terminator, CondBranch):
        return [terminator.taken, terminator.fallthrough]
    if isinstance(terminator, Jump):
        return [terminator.target]
    return []


def _has_cfg_cycle(fn: IRFunction) -> bool:
    """Iterative three-color DFS over the block graph."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[str, int] = {block.label: WHITE for block in fn.blocks}
    for root in color:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[str, int]] = [(root, 0)]
        color[root] = GRAY
        while stack:
            label, cursor = stack[-1]
            successors = _cfg_successors(fn.block(label).instructions)
            if cursor < len(successors):
                stack[-1] = (label, cursor + 1)
                nxt = successors[cursor]
                if color[nxt] == GRAY:
                    return True
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, 0))
            else:
                color[label] = BLACK
                stack.pop()
    return False


def _faultable_division(instruction: Instruction) -> bool:
    return (
        isinstance(instruction, BinOp)
        and instruction.op in ("/", "%")
        and (isinstance(instruction.rhs, Reg) or instruction.rhs == 0)
    )


def compute_callee_facts(
    functions: Sequence[IRFunction], purity: PurityResult
) -> Dict[str, CalleeFacts]:
    """Per-function facts a walk needs at call sites.

    ``total`` is a greatest fixpoint: assume total, strike functions
    with a CFG cycle or a faultable division, then propagate
    non-totality up the call graph (recursion strikes itself via the
    cycle this creates).
    """
    total: Dict[str, bool] = {}
    callees: Dict[str, Set[str]] = {}
    for fn in functions:
        ok = not _has_cfg_cycle(fn)
        called: Set[str] = set()
        for instruction in fn.instructions():
            if _faultable_division(instruction):
                ok = False
            elif isinstance(instruction, Call):
                if instruction.callee not in BUILTINS:
                    called.add(instruction.callee)
        total[fn.name] = ok
        callees[fn.name] = called
    changed = True
    while changed:
        changed = False
        for name, called in callees.items():
            if total[name] and any(not total.get(c, False) for c in called):
                total[name] = False
                changed = True
    facts: Dict[str, CalleeFacts] = {}
    for fn in functions:
        effect = purity.effect_of(fn.name)
        facts[fn.name] = CalleeFacts(
            may_write=effect.variables,
            clobbers_all=effect.clobbers_all,
            total=total[fn.name],
        )
    return facts


# ----------------------------------------------------------------------
# Branch relevance: which variables can influence any branch at all
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BranchRelevance:
    """Module-wide dependence closure result.

    ``everything`` means some branch depends on memory the analysis
    cannot name (an indirect read with no alias bound) — every
    variable must then be treated as branch-relevant.
    """

    variables: FrozenSet[Variable]
    everything: bool

    def relevant(self, var: Variable) -> bool:
        return self.everything or var in self.variables


#: Sentinel inside dependence sets: "unknown memory".
_ANY = "<any-memory>"

_Dep = FrozenSet[object]


def compute_branch_relevance(
    functions: Sequence[IRFunction],
) -> BranchRelevance:
    """Flow-insensitive dependence closure from every memory variable
    to every conditional branch operand.

    Each register and each variable's memory accumulates the set of
    *source* variables its value may transitively derive from (a store
    makes the target depend on the source's set; an indirect store
    through an untracked address poisons everything).  A variable
    absent from every branch's closure provably cannot change any
    branch outcome — the ``DET803`` premise.
    """
    reg_dep: Dict[Tuple[str, Reg], _Dep] = {}
    mem_dep: Dict[Variable, _Dep] = {}
    #: Dependencies that may have been written to *any* address.
    everywhere: Set[object] = set()
    relevant: Set[object] = set()

    for fn in functions:
        for var in set(fn.frame_variables):
            mem_dep[var] = frozenset({var})

    return_regs: Dict[str, List[Tuple[str, Reg]]] = {}
    for fn in functions:
        sources: List[Tuple[str, Reg]] = []
        for block in fn.blocks:
            terminator = block.instructions[-1]
            if isinstance(terminator, Return) and isinstance(
                terminator.value, Reg
            ):
                sources.append((fn.name, terminator.value))
        return_regs[fn.name] = sources

    def rdep(fn_name: str, operand: object) -> _Dep:
        if isinstance(operand, Reg):
            return reg_dep.get((fn_name, operand), frozenset())
        return frozenset()

    def mdep(var: Variable) -> _Dep:
        existing = mem_dep.get(var)
        if existing is None:
            existing = mem_dep[var] = frozenset({var})
        return existing

    changed = True
    while changed:
        changed = False

        def absorb_reg(fn_name: str, reg: Reg, extra: _Dep) -> None:
            nonlocal changed
            key = (fn_name, reg)
            current = reg_dep.get(key, frozenset())
            union = current | extra
            if union != current:
                reg_dep[key] = union
                changed = True

        def absorb_mem(var: Variable, extra: _Dep) -> None:
            nonlocal changed
            current = mdep(var)
            union = current | extra
            if union != current:
                mem_dep[var] = union
                changed = True

        def absorb_everywhere(extra: _Dep) -> None:
            nonlocal changed
            if not extra <= everywhere:
                everywhere.update(extra)
                changed = True

        for fn in functions:
            name = fn.name
            for instruction in fn.instructions():
                cls = instruction.__class__
                if cls is Load:
                    assert isinstance(instruction, Load)
                    absorb_reg(
                        name,
                        instruction.dest,
                        mdep(instruction.var) | frozenset(everywhere),
                    )
                elif cls is Store:
                    assert isinstance(instruction, Store)
                    absorb_mem(
                        instruction.var, rdep(name, instruction.src)
                    )
                elif cls is LoadIndirect:
                    assert isinstance(instruction, LoadIndirect)
                    deps = rdep(name, instruction.addr)
                    if instruction.may_alias:
                        for target in instruction.may_alias:
                            deps = deps | mdep(target)
                        deps = deps | frozenset(everywhere)
                    else:
                        deps = deps | frozenset({_ANY})
                    absorb_reg(name, instruction.dest, deps)
                elif cls is StoreIndirect:
                    assert isinstance(instruction, StoreIndirect)
                    deps = rdep(name, instruction.addr) | rdep(
                        name, instruction.src
                    )
                    if instruction.may_alias:
                        for target in instruction.may_alias:
                            absorb_mem(target, deps)
                    else:
                        absorb_everywhere(deps)
                elif cls is Call:
                    assert isinstance(instruction, Call)
                    if instruction.callee in BUILTINS:
                        continue  # read_int/emit touch no memory
                    callee_params = _params_of(functions, instruction.callee)
                    for param, arg in zip(callee_params, instruction.args):
                        absorb_mem(param, rdep(name, arg))
                    if instruction.dest is not None:
                        deps = frozenset()
                        for key in return_regs.get(instruction.callee, []):
                            deps = deps | reg_dep.get(key, frozenset())
                        absorb_reg(name, instruction.dest, deps)
                elif cls is CondBranch:
                    assert isinstance(instruction, CondBranch)
                    deps = rdep(name, instruction.lhs) | rdep(
                        name, instruction.rhs
                    )
                    if not deps <= relevant:
                        relevant.update(deps)
                        changed = True
                else:
                    dest = getattr(instruction, "dest", None)
                    if isinstance(dest, Reg):
                        deps = frozenset()
                        for attr in ("lhs", "rhs", "src"):
                            deps = deps | rdep(
                                name, getattr(instruction, attr, None)
                            )
                        if deps:
                            absorb_reg(name, dest, deps)

    return BranchRelevance(
        variables=frozenset(
            d for d in relevant if isinstance(d, Variable)
        ),
        everything=_ANY in relevant,
    )


def _params_of(
    functions: Sequence[IRFunction], name: str
) -> Sequence[Variable]:
    for fn in functions:
        if fn.name == name:
            return fn.params
    return ()


# ----------------------------------------------------------------------
# Clean-prefix must dataflow: guaranteed BSV knowledge per block
# ----------------------------------------------------------------------


def _apply_actions(
    state: Dict[int, BranchStatus],
    actions: Tuple[Tuple[int, BranchAction], ...],
) -> Dict[int, BranchStatus]:
    if not actions:
        return state
    updated = dict(state)
    for slot, action in actions:
        if action is BranchAction.SET_T:
            updated[slot] = BranchStatus.TAKEN
        elif action is BranchAction.SET_NT:
            updated[slot] = BranchStatus.NOT_TAKEN
        elif action is BranchAction.SET_UN:
            updated.pop(slot, None)
    return updated


def _meet(
    a: Dict[int, BranchStatus], b: Dict[int, BranchStatus]
) -> Dict[int, BranchStatus]:
    return {
        slot: status
        for slot, status in a.items()
        if b.get(slot) is status
    }


def must_bsv_states(
    fn: IRFunction,
    tables: Optional[FunctionTables],
    pruned_edges: FrozenSet[Tuple[str, bool]] = frozenset(),
) -> Dict[str, Dict[int, BranchStatus]]:
    """All-paths-guaranteed BSV state at every block entry.

    Forward dataflow from the function entry (a fresh frame is
    all-UNKNOWN), firing the branch's BAT actions along each outgoing
    edge and *meeting* (agree-or-UNKNOWN) where paths join.  Two
    refinements, both valid for clean prefixes only:

    * zero-false-positives — a checked branch with a definite
      must-status cannot go the other way on a clean run (the audit
      passes independently re-prove this of the tables), so the
      contradicting edge contributes nothing;
    * ``pruned_edges`` (opt 3) — clean runs travel feasible edges only.

    The walk that *starts* from these states prunes nothing: tampered
    runs exist to violate both assumptions.
    """
    if tables is None:
        return {block.label: {} for block in fn.blocks}
    entry = fn.entry.label
    states: Dict[str, Dict[int, BranchStatus]] = {entry: {}}
    worklist: List[str] = [entry]

    def merge(target: str, out_state: Dict[int, BranchStatus]) -> None:
        if target not in states:
            states[target] = dict(out_state)
            worklist.append(target)
            return
        met = _meet(states[target], out_state)
        if met != states[target]:
            states[target] = met
            worklist.append(target)

    while worklist:
        label = worklist.pop()
        state = states[label]
        terminator = fn.block(label).instructions[-1]
        if isinstance(terminator, Jump):
            merge(terminator.target, state)
        elif isinstance(terminator, CondBranch):
            plan = tables.branch_plan(terminator.address)
            expected: Optional[BranchStatus] = None
            if plan is not None and plan[1]:
                expected = state.get(plan[0])
            for direction in (True, False):
                if expected is not None and (
                    (expected is BranchStatus.TAKEN) != direction
                ):
                    continue  # clean runs cannot alarm (zero-FP)
                if (label, direction) in pruned_edges:
                    continue  # clean runs travel feasible edges only
                actions = (
                    ()
                    if plan is None
                    else (plan[2] if direction else plan[3])
                )
                merge(
                    terminator.taken if direction else terminator.fallthrough,
                    _apply_actions(state, actions),
                )
    for block in fn.blocks:
        states.setdefault(block.label, {})
    return states


# ----------------------------------------------------------------------
# The must-alarm walk
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WalkResult:
    """All-paths classification of one walk from one tamper point."""

    #: Terminal kinds reached: ``alarm``, ``return``, ``escape:<why>``.
    outcomes: FrozenSet[str]
    #: The walked state graph contains a cycle (possible silent loop).
    cyclic: bool
    #: Some walked path may write the tampered variable.
    wrote_var: bool
    #: Branch decisions plus terminal reason of the first path that is
    #: not an alarm — the ``DET802`` escaping-path witness.
    witness: Tuple[str, ...]
    #: States explored (diagnostic interest only).
    states: int

    @property
    def must_alarm(self) -> bool:
        return self.outcomes == frozenset({"alarm"}) and not self.cyclic

    @property
    def alarm_or_return(self) -> bool:
        """Every path alarms or returns — the condition an *outer*
        frame needs of the frames below it (an alarm is a catch; a
        return resumes the outer frame at its own walked point)."""
        return (
            self.outcomes <= frozenset({"alarm", "return"})
            and not self.cyclic
        )


#: Walk state: (block, index, BSV knowledge, forcing alive).
_WalkState = Tuple[str, int, _BsvKey, bool]


def _freeze(state: Mapping[int, BranchStatus]) -> _BsvKey:
    return tuple(
        sorted((slot, status.value) for slot, status in state.items())
    )


def _thaw(key: _BsvKey) -> Dict[int, BranchStatus]:
    return {slot: BranchStatus(value) for slot, value in key}


@dataclass(frozen=True)
class _Expansion:
    """One state's single-step semantics: either a terminal or its
    outgoing edges, plus whether the straight-line scan to the block's
    terminator may write the tampered variable."""

    terminal: Optional[Tuple[str, str]]
    edges: Tuple[Tuple[str, _WalkState], ...]
    wrote: bool


class WalkGraph:
    """The product graph (CFG location × BSV knowledge × forcing bit)
    for one (function, variable, forced-outcome vector).

    Walks from different tamper points explore heavily overlapping
    regions of this graph — a workload's report asks for every block
    entry — so expansions are memoized here and shared across walks.
    Each walk is then a cheap BFS over cached edges.

    ``forced_outcomes`` maps the PCs of branches that test the
    variable (via a direct in-block load chain) to the direction the
    tampered value forces; ``None`` disables forcing (unknown value /
    foreign frame).  Forcing stays valid only while no walked
    instruction may write the variable — the ``forcing`` bit of each
    state.  A check whose load sits *before* a state's entry index
    read the clean value, so it is never forced (only a walk's start
    state can have a nonzero entry index).
    """

    def __init__(
        self,
        fn: IRFunction,
        tables: Optional[FunctionTables],
        facts_by_pc: Mapping[int, BranchFacts],
        callee_facts: Mapping[str, CalleeFacts],
        var: Variable,
        forced_outcomes: Optional[Mapping[int, bool]],
    ) -> None:
        self._fn = fn
        self._tables = tables
        self._facts_by_pc = facts_by_pc
        self._callee_facts = callee_facts
        self._var = var
        self._forced = forced_outcomes if tables is not None else None
        self._expansions: Dict[_WalkState, _Expansion] = {}

    @property
    def forcing_enabled(self) -> bool:
        return self._forced is not None

    def expand(self, state: _WalkState) -> _Expansion:
        cached = self._expansions.get(state)
        if cached is None:
            cached = self._expand(state)
            self._expansions.setdefault(state, cached)
        return cached

    def _expand(self, state: _WalkState) -> _Expansion:
        label, index, bsv_key, forcing = state
        var = self._var
        tables = self._tables
        instructions = self._fn.block(label).instructions
        wrote = False
        cursor = index
        while cursor < len(instructions):
            instruction = instructions[cursor]
            cls = instruction.__class__
            if cls is Store:
                assert isinstance(instruction, Store)
                if instruction.var == var:
                    forcing = False
                    wrote = True
            elif cls is StoreIndirect:
                assert isinstance(instruction, StoreIndirect)
                if not instruction.may_alias or var in instruction.may_alias:
                    forcing = False
                    wrote = True
            elif cls is Call:
                assert isinstance(instruction, Call)
                if instruction.callee not in BUILTINS:
                    facts = self._callee_facts.get(instruction.callee)
                    if facts is None or not facts.total:
                        return _Expansion(
                            ("escape:call", instruction.callee), (), wrote
                        )
                    if facts.may_write_var(var):
                        forcing = False
                        wrote = True
            elif _faultable_division(instruction):
                return _Expansion(
                    ("escape:division", str(instruction)), (), wrote
                )
            elif cls is Return:
                return _Expansion(("return", ""), (), wrote)
            elif cls is Jump:
                assert isinstance(instruction, Jump)
                return _Expansion(
                    None,
                    (
                        (
                            f"{label}:jump",
                            (instruction.target, 0, bsv_key, forcing),
                        ),
                    ),
                    wrote,
                )
            elif cls is CondBranch:
                assert isinstance(instruction, CondBranch)
                pc = instruction.address
                plan = None if tables is None else tables.branch_plan(pc)
                state_map = _thaw(bsv_key)
                expected: Optional[BranchStatus] = None
                if plan is not None and plan[1]:
                    expected = state_map.get(plan[0])
                forced: Optional[bool] = None
                if forcing and self._forced is not None:
                    branch_facts = self._facts_by_pc.get(pc)
                    if (
                        pc in self._forced
                        and branch_facts is not None
                        and branch_facts.check is not None
                        # A load at an instruction slot before this
                        # state's entry index already ran — it read the
                        # clean, pre-tamper value, so the register does
                        # not carry the forced value.
                        and branch_facts.check.load_index >= index
                    ):
                        forced = self._forced[pc]
                directions = (
                    (forced,) if forced is not None else (True, False)
                )
                edges: List[Tuple[str, _WalkState]] = []
                for direction in directions:
                    assert direction is not None
                    edge = f"{label}:{'T' if direction else 'NT'}"
                    if expected is not None and (
                        (expected is BranchStatus.TAKEN) != direction
                    ):
                        # The runtime verifies before updating: the
                        # definite expectation is contradicted ⇒ alarm.
                        alarm_state: _WalkState = (
                            f"<alarm:{label}:{direction}>",
                            -1,
                            bsv_key,
                            forcing,
                        )
                        self._expansions.setdefault(
                            alarm_state,
                            _Expansion(("alarm", edge), (), False),
                        )
                        edges.append((edge, alarm_state))
                        continue
                    actions = (
                        ()
                        if plan is None
                        else (plan[2] if direction else plan[3])
                    )
                    next_key = _freeze(_apply_actions(state_map, actions))
                    target = (
                        instruction.taken
                        if direction
                        else instruction.fallthrough
                    )
                    edges.append((edge, (target, 0, next_key, forcing)))
                return _Expansion(None, tuple(edges), wrote)
            cursor += 1
        # Unreachable for verified IR: blocks end in a terminator.
        return _Expansion(("return", ""), (), wrote)  # pragma: no cover

    def walk(
        self,
        start_block: str,
        start_index: int,
        initial: Mapping[int, BranchStatus],
    ) -> WalkResult:
        """Classify every path from one tamper point (see
        :class:`WalkResult`), reusing expansions across walks."""
        start: _WalkState = (
            start_block,
            start_index,
            _freeze(dict(initial)),
            self._forced is not None,
        )
        parents: Dict[_WalkState, Tuple[_WalkState, str]] = {}
        outcomes: Set[str] = set()
        witness_state: Optional[_WalkState] = None
        wrote_var = False
        capped = False
        queue: List[_WalkState] = [start]
        seen: Set[_WalkState] = {start}
        while queue:
            state = queue.pop()
            if len(seen) > MAX_WALK_STATES:
                capped = True
                break
            expansion = self.expand(state)
            wrote_var = wrote_var or expansion.wrote
            if expansion.terminal is not None:
                kind, _detail = expansion.terminal
                outcomes.add(kind)
                if kind != "alarm" and witness_state is None:
                    witness_state = state
                continue
            for edge, nxt in expansion.edges:
                if nxt not in seen:
                    seen.add(nxt)
                    parents[nxt] = (state, edge)
                    queue.append(nxt)
        if capped:
            outcomes.add("escape:state-cap")

        cyclic = True if capped else self._has_cycle(start)

        witness: Tuple[str, ...] = ()
        if witness_state is not None:
            path: List[str] = []
            cursor_state = witness_state
            while cursor_state != start and cursor_state in parents:
                parent, edge = parents[cursor_state]
                path.append(edge)
                cursor_state = parent
            path.reverse()
            terminal = self.expand(witness_state).terminal
            assert terminal is not None
            kind, detail = terminal
            path.append(f"{kind}{f'({detail})' if detail else ''}")
            witness = tuple(path[-12:])
        elif capped:
            witness = ("escape:state-cap",)
        elif cyclic:
            witness = ("escape:loop",)

        if cyclic and not capped:
            outcomes.add("escape:loop")
        return WalkResult(
            outcomes=frozenset(outcomes),
            cyclic=cyclic,
            wrote_var=wrote_var,
            witness=witness,
            states=len(seen),
        )

    def _has_cycle(self, start: _WalkState) -> bool:
        """Three-color DFS over the (already expanded) reachable
        subgraph from ``start``."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[_WalkState, int] = {start: GRAY}
        stack: List[Tuple[_WalkState, int]] = [(start, 0)]
        while stack:
            node, cursor = stack[-1]
            edges = self.expand(node).edges
            if cursor < len(edges):
                stack[-1] = (node, cursor + 1)
                nxt = edges[cursor][1]
                nxt_color = color.get(nxt, WHITE)
                if nxt_color == GRAY:
                    return True
                if nxt_color == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, 0))
            else:
                color[node] = BLACK
                stack.pop()
        return False


def must_alarm_walk(
    fn: IRFunction,
    tables: Optional[FunctionTables],
    facts_by_pc: Mapping[int, BranchFacts],
    callee_facts: Mapping[str, CalleeFacts],
    start_block: str,
    start_index: int,
    initial: Mapping[int, BranchStatus],
    var: Variable,
    forced_outcomes: Optional[Mapping[int, bool]],
) -> WalkResult:
    """One-shot walk without a shared graph (unit tests and ad-hoc
    queries); :class:`DetectabilityAnalysis` goes through
    :class:`WalkGraph` directly to share expansions."""
    graph = WalkGraph(
        fn, tables, facts_by_pc, callee_facts, var, forced_outcomes
    )
    return graph.walk(start_block, start_index, initial)


# ----------------------------------------------------------------------
# Value regions
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ValueRegion:
    """A maximal set of tamper values with identical forced outcomes
    at every branch that checks the variable.  ``None`` bounds are
    unbounded; ``representative`` is any member."""

    lo: Optional[int]
    hi: Optional[int]
    representative: int

    def __str__(self) -> str:
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


def value_regions(
    checks: Sequence[Tuple[object, int]],
) -> Tuple[ValueRegion, ...]:
    """Partition ℤ by the bounds of the checks over one variable.

    ``checks`` is a sequence of ``(RelOp, bound)``; every relop's
    truth value changes only at ``bound-1 / bound / bound+1``, so the
    candidate boundary set below makes each cell outcome-constant.
    Adjacent cells with identical outcome vectors are merged.
    """
    if not checks:
        return (ValueRegion(None, None, 0),)
    candidates: Set[int] = set()
    for _op, bound in checks:
        candidates.update((bound - 1, bound, bound + 1))
    points = sorted(candidates)

    def vector(value: int) -> Tuple[bool, ...]:
        return tuple(
            op.evaluate(value, bound)  # type: ignore[attr-defined]
            for op, bound in checks
        )

    cells: List[ValueRegion] = [
        ValueRegion(None, points[0] - 1, points[0] - 1)
    ]
    for i, point in enumerate(points):
        cells.append(ValueRegion(point, point, point))
        nxt = points[i + 1] if i + 1 < len(points) else None
        if nxt is None:
            cells.append(ValueRegion(point + 1, None, point + 1))
        elif nxt > point + 1:
            cells.append(ValueRegion(point + 1, nxt - 1, point + 1))

    merged: List[ValueRegion] = []
    for cell in cells:
        if merged and vector(merged[-1].representative) == vector(
            cell.representative
        ):
            merged[-1] = ValueRegion(
                merged[-1].lo, cell.hi, merged[-1].representative
            )
        else:
            merged.append(cell)
    return tuple(merged)


# ----------------------------------------------------------------------
# The analysis facade
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class PointVerdict:
    """One (variable × region × point) verdict of the static report."""

    variable: str
    function: str
    block: str
    region: ValueRegion
    verdict: str
    witness: Tuple[str, ...] = ()


class DetectabilityAnalysis:
    """Whole-program detectability prover with memoized sub-analyses.

    Build once per compiled program; ask per-point verdicts
    (:meth:`point_verdict`), per-attack verdicts for the campaign join
    (:meth:`attack_verdict`), or the full static report
    (:meth:`report`).
    """

    def __init__(self, program: object, purity: PurityResult) -> None:
        self._program = program
        module = program.module  # type: ignore[attr-defined]
        self._module = module
        self._tables = program.tables  # type: ignore[attr-defined]
        self._opt_level = int(
            getattr(program, "opt_level", 0) or 0
        )
        self._functions: Dict[str, IRFunction] = {
            fn.name: fn for fn in module.functions
        }
        self._purity = purity
        self._callee_facts = compute_callee_facts(
            list(module.functions), purity
        )
        self._relevance = compute_branch_relevance(list(module.functions))
        self._def_maps: Dict[str, DefinitionMap] = {}
        self._facts: Dict[str, Dict[int, BranchFacts]] = {}
        self._must: Dict[str, Dict[str, Dict[int, BranchStatus]]] = {}
        self._pruned: Dict[str, FrozenSet[Tuple[str, bool]]] = {}
        self._graphs: Dict[
            Tuple[str, str, int, Optional[Tuple[Tuple[int, bool], ...]]],
            WalkGraph,
        ] = {}
        self._walks: Dict[
            Tuple[
                str,
                str,
                int,
                str,
                int,
                Optional[Tuple[Tuple[int, bool], ...]],
            ],
            WalkResult,
        ] = {}
        self._regions: Dict[Tuple[str, int], Tuple[ValueRegion, ...]] = {}

    # -- memoized sub-analyses ------------------------------------------

    @property
    def opt_level(self) -> int:
        return self._opt_level

    @property
    def relevance(self) -> BranchRelevance:
        return self._relevance

    def _def_map(self, fn: IRFunction) -> DefinitionMap:
        if fn.name not in self._def_maps:
            self._def_maps[fn.name] = DefinitionMap(
                fn, self._module, self._purity
            )
        return self._def_maps[fn.name]

    def branch_facts(self, fn: IRFunction) -> Dict[int, BranchFacts]:
        if fn.name not in self._facts:
            self._facts[fn.name] = analyze_branches(fn, self._def_map(fn))
        return self._facts[fn.name]

    def _pruned_edges(
        self, fn: IRFunction
    ) -> FrozenSet[Tuple[str, bool]]:
        """Opt-3 clean-prefix refinement; empty below opt 3."""
        if fn.name not in self._pruned:
            if self._opt_level >= 3:
                _reached, pruned = entry_reachability(
                    fn, self._def_map(fn), self.branch_facts(fn)
                )
                self._pruned[fn.name] = frozenset(pruned)
            else:
                self._pruned[fn.name] = frozenset()
        return self._pruned[fn.name]

    def must_states(
        self, fn: IRFunction
    ) -> Dict[str, Dict[int, BranchStatus]]:
        if fn.name not in self._must:
            self._must[fn.name] = must_bsv_states(
                fn,
                self._tables.by_function.get(fn.name),
                self._pruned_edges(fn),
            )
        return self._must[fn.name]

    def regions_for(self, var: Variable) -> Tuple[ValueRegion, ...]:
        key = (var.name, var.uid)
        if key not in self._regions:
            checks: List[Tuple[object, int]] = []
            for fn in self._module.functions:
                for facts in self.branch_facts(fn).values():
                    if facts.check is not None and facts.check.var == var:
                        checks.append((facts.check.op, facts.check.bound))
            self._regions[key] = value_regions(checks)
        return self._regions[key]

    # -- walks -----------------------------------------------------------

    def walk_from(
        self,
        fn_name: str,
        block: str,
        index: int,
        var: Variable,
        value: Optional[int],
    ) -> WalkResult:
        """Memoized must-alarm walk from a resume point.

        ``value`` enables forcing (the tampered value is known and the
        walked frame can see the variable); ``None`` walks both
        directions everywhere.
        """
        fn = self._functions[fn_name]
        facts_by_pc = self.branch_facts(fn)
        forced: Optional[Dict[int, bool]] = None
        forced_key: Optional[Tuple[Tuple[int, bool], ...]] = None
        if value is not None:
            forced = {
                pc: facts.check.outcome_for_value(value)
                for pc, facts in facts_by_pc.items()
                if facts.check is not None and facts.check.var == var
            }
            forced_key = tuple(sorted(forced.items()))
        cache_key = (
            fn_name,
            block,
            index,
            var.name,
            var.uid,
            forced_key,
        )
        if cache_key not in self._walks:
            graph_key = (fn_name, var.name, var.uid, forced_key)
            graph = self._graphs.get(graph_key)
            if graph is None:
                graph = self._graphs[graph_key] = WalkGraph(
                    fn,
                    self._tables.by_function.get(fn_name),
                    facts_by_pc,
                    self._callee_facts,
                    var,
                    forced,
                )
            self._walks[cache_key] = graph.walk(
                block, index, self.must_states(fn).get(block, {})
            )
        return self._walks[cache_key]

    # -- verdicts --------------------------------------------------------

    def point_verdict(
        self,
        var: Variable,
        fn_name: str,
        block: str,
        value: int,
        index: int = 0,
    ) -> Tuple[str, Tuple[str, ...]]:
        """Verdict for a tamper landing at one resume point, treating
        that point as the innermost (resuming) activation."""
        if not self._relevance.relevant(var):
            return PROVEN_UNDETECTED, ()
        result = self.walk_from(fn_name, block, index, var, value)
        if result.must_alarm:
            return PROVEN_DETECTED, ()
        return POSSIBLY_DETECTED, result.witness

    def attack_verdict(
        self,
        var: Variable,
        word_offset: int,
        value: int,
        frames: Sequence[SiteFrame],
        owner_frame: Optional[int],
    ) -> Tuple[str, Tuple[str, ...]]:
        """Verdict for a concrete campaign attack.

        ``frames`` is the interpreter's tamper-moment site stack
        (outer→inner resume points); ``owner_frame`` is the index of
        the activation owning a tampered stack slot (``None`` for a
        global).  Walking inner→outer: the innermost frame that
        must-alarms proves ``DET801`` provided every frame below it
        can only alarm or return without touching the variable (its
        alarm is a catch; its return resumes the outer walk's point
        with the corruption and the outer BSV frame intact).
        """
        if not self._relevance.relevant(var):
            return PROVEN_UNDETECTED, ()
        if not frames:
            return POSSIBLY_DETECTED, ("no-site",)
        deeper_clean = True
        witness: Tuple[str, ...] = ()
        for depth in range(len(frames) - 1, -1, -1):
            fn_name, block, index = frames[depth]
            if fn_name not in self._functions:
                return POSSIBLY_DETECTED, (f"unknown-function:{fn_name}",)
            sees_var = (
                var.kind.value == "global"
                or (owner_frame is not None and depth == owner_frame)
            )
            forced_value = (
                value if sees_var and word_offset == 0 else None
            )
            result = self.walk_from(
                fn_name, block, index, var, forced_value
            )
            if not witness and not result.must_alarm:
                witness = result.witness
            if result.must_alarm and deeper_clean:
                return PROVEN_DETECTED, ()
            if not (result.alarm_or_return and not result.wrote_var):
                deeper_clean = False
        return POSSIBLY_DETECTED, witness or ("no-frame-must-alarm",)

    # -- the static report ----------------------------------------------

    def report(self) -> List[PointVerdict]:
        """Enumerate verdicts for every tamper point: each global
        variable × each value region × each block-entry resume point."""
        verdicts: List[PointVerdict] = []
        for var in self._module.globals:
            regions = self.regions_for(var)
            if not self._relevance.relevant(var):
                verdicts.append(
                    PointVerdict(
                        variable=var.name,
                        function="<module>",
                        block="<all>",
                        region=ValueRegion(None, None, 0),
                        verdict=PROVEN_UNDETECTED,
                    )
                )
                continue
            for fn in self._module.functions:
                for block in fn.blocks:
                    for region in regions:
                        verdict, witness = self.point_verdict(
                            var,
                            fn.name,
                            block.label,
                            region.representative,
                        )
                        verdicts.append(
                            PointVerdict(
                                variable=var.name,
                                function=fn.name,
                                block=block.label,
                                region=region,
                                verdict=verdict,
                                witness=witness,
                            )
                        )
        return verdicts


# ----------------------------------------------------------------------
# The registered pass
# ----------------------------------------------------------------------


def predict_detectability(
    program: object, purity: PurityResult
) -> List[Diagnostic]:
    """The ``repro predict`` pass: aggregate the per-point report into
    per-(variable, function) diagnostics through the standard engine."""
    sink = DiagnosticSink(PASS_NAME)
    analysis = DetectabilityAnalysis(program, purity)
    verdicts = analysis.report()

    by_var_fn: Dict[Tuple[str, str], List[PointVerdict]] = {}
    for verdict in verdicts:
        by_var_fn.setdefault(
            (verdict.variable, verdict.function), []
        ).append(verdict)

    for (var_name, fn_name), points in sorted(by_var_fn.items()):
        if points[0].verdict == PROVEN_UNDETECTED and fn_name == "<module>":
            sink.emit(
                PROVEN_UNDETECTED,
                f"tampering '{var_name}' can never alarm: no conditional "
                f"branch depends on it (any value, any point)",
                function=None,
            )
            continue
        proven = [p for p in points if p.verdict == PROVEN_DETECTED]
        possible = [p for p in points if p.verdict == POSSIBLY_DETECTED]
        total = len(points)
        if proven:
            example = proven[0]
            sink.emit(
                PROVEN_DETECTED,
                f"tampering '{var_name}' must alarm from "
                f"{len(proven)}/{total} (region × point) combinations "
                f"in {fn_name} (e.g. {example.block} with value in "
                f"{example.region})",
                function=fn_name,
                block=example.block,
            )
        if possible:
            example = possible[0]
            escape = " -> ".join(example.witness) or "unknown"
            sink.emit(
                POSSIBLY_DETECTED,
                f"tampering '{var_name}' may escape from "
                f"{len(possible)}/{total} (region × point) combinations "
                f"in {fn_name} (e.g. {example.block} with value in "
                f"{example.region}, escaping path: {escape})",
                function=fn_name,
                block=example.block,
            )
    return sink.diagnostics
