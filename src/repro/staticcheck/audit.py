"""Correlation soundness auditor (pass: correlation-audit) and binary
image auditor (pass: image-audit).

The paper's headline guarantee is **zero false positives**: every
``SET_T``/``SET_NT`` action the compiler placed in the BAT must hold on
*all* feasible paths from the edge that fires it to the branch it
predicts — otherwise IPDS raises an alarm on a legitimate run (§4–5).
This module re-proves that property with machinery deliberately
independent of :mod:`repro.correlation.bat_builder`:

* facts come from the forward symbolic walk in
  :mod:`repro.staticcheck.facts` (the builder uses a backward chain
  walk in ``analysis/branch_info.py``);
* the proof is a path-sensitive maximum-fixpoint range propagation
  seeded at the firing edge, instead of the builder's region-based
  kill placement.

For one BAT entry ``((bs, d) -> bl, SET_x)`` the obligation is: on
every feasible path from edge ``(bs, d)`` on which the prediction is
still *live* (no later crossed edge fires an action into ``bl``'s slot
— the runtime BSV keeps a status until overwritten), any execution of
``bl`` goes in direction ``x``.  The MFP over-approximates the set of
machine states reaching each block while the prediction is live;
cutting propagation at every overwriting edge models liveness exactly,
and directions contradicting the abstract state are pruned as
infeasible.  ``SET_UN`` needs no proof (it only weakens detection).

The shared trust base with the builder is the *may-write* model
(alias sets, purity, :class:`~repro.analysis.defs.DefinitionMap`):
both sides must agree on what a call or indirect store can clobber,
or the audit would flag sound entries.  Everything above that layer —
implication derivation, subsumption, kill/liveness reasoning — is
recomputed here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..analysis.alias import analyze_aliases
from ..analysis.branch_info import OutcomeSet
from ..analysis.defs import DefinitionMap
from ..analysis.purity import PurityResult, analyze_purity
from ..correlation.actions import BranchAction
from ..correlation.binary_image import (
    _ACTION_CODES,
    _pack_bat,
    _pack_bcv,
    load_program,
)
from ..correlation.encoding import table_sizes
from ..correlation.hashing import MAX_BITS, MAX_SHIFT
from ..correlation.provenance import sort_records
from ..correlation.tables import FunctionTables
from ..ir.function import IRFunction, IRModule
from .diagnostics import Diagnostic, DiagnosticSink
from .domain import ValueSet
from .facts import (
    BlockSummary,
    edge_environment,
    summarize_function,
    transfer_block,
)
from .ipsummaries import IPSummaries, derive_ipsummaries
from .mfp import solve_range_mfp

AUDIT_PASS = "correlation-audit"
IMAGE_PASS = "image-audit"


def audit_program(program, purity: Optional[PurityResult] = None) -> List[Diagnostic]:
    """Audit every function's tables of a
    :class:`~repro.pipeline.ProtectedProgram`."""
    sink = DiagnosticSink(AUDIT_PASS)
    module: IRModule = program.module
    if purity is None:
        analyze_aliases(module)
        purity = analyze_purity(module)
    # Interprocedural transfer summaries, re-derived from the auditor's
    # own facts.  Used unconditionally: at opt 0/1 they only *add*
    # precision over call-clobbers-to-top, so every previously provable
    # entry stays provable; at opt 2 they are what makes the builder's
    # suppressed-kill entries provable at all.
    transfers = derive_ipsummaries(module, purity)
    for fn in module.functions:
        tables = program.tables.by_function.get(fn.name)
        if tables is None:
            sink.emit(
                "COR210",
                "no tables were emitted for this function",
                function=fn.name,
            )
            continue
        audit_function_tables(sink, fn, module, tables, purity, transfers)
    return sink.diagnostics


def audit_function_tables(
    sink: DiagnosticSink,
    fn: IRFunction,
    module: IRModule,
    tables: FunctionTables,
    purity: PurityResult,
    transfers: Optional[IPSummaries] = None,
) -> None:
    params = tables.hash_params
    ir_pcs = tuple(sorted(branch.address for branch in fn.cond_branches()))
    if tuple(sorted(tables.branch_pcs)) != ir_pcs:
        sink.emit(
            "COR210",
            f"tables list branch PCs {[hex(p) for p in tables.branch_pcs]} "
            f"but the IR has {[hex(p) for p in ir_pcs]}",
            function=fn.name,
        )
        return

    if (
        params.bits < 0
        or params.bits > MAX_BITS
        or not (1 <= params.shift1 <= MAX_SHIFT)
        or not (params.shift1 <= params.shift2 <= MAX_SHIFT)
        or params.space < len(tables.branch_pcs)
    ):
        sink.emit(
            "COR207",
            f"{params} cannot host {len(tables.branch_pcs)} branches "
            f"within the compiler's search limits",
            function=fn.name,
        )
        return

    # -- collision freeness (recomputed, not trusted) -------------------
    slot_of_pc: Dict[int, int] = {}
    pcs_of_slot: Dict[int, List[int]] = {}
    for pc in tables.branch_pcs:
        slot = params.slot(pc)
        slot_of_pc[pc] = slot
        pcs_of_slot.setdefault(slot, []).append(pc)
    collided = False
    for slot, pcs in sorted(pcs_of_slot.items()):
        if len(pcs) > 1:
            collided = True
            sink.emit(
                "COR201",
                f"branch PCs {[hex(p) for p in pcs]} all hash to slot "
                f"{slot} — the tagless tables would conflate them",
                function=fn.name,
            )
    if collided:
        return  # slot identities are meaningless from here on

    valid_slots = set(slot_of_pc.values())

    # -- slot validity of BCV and BAT -----------------------------------
    for slot in sorted(tables.bcv_slots):
        if slot not in valid_slots:
            sink.emit(
                "COR202",
                f"BCV marks slot {slot}, which no branch PC hashes to",
                function=fn.name,
            )
    set_targets: Set[int] = set()
    for (source_slot, taken), entries in sorted(tables.bat.items()):
        if source_slot not in valid_slots:
            sink.emit(
                "COR203",
                f"BAT event key (slot {source_slot}, "
                f"{'taken' if taken else 'not-taken'}) is not a branch slot",
                function=fn.name,
            )
            continue
        for target_slot, action in entries:
            if target_slot not in valid_slots:
                sink.emit(
                    "COR204",
                    f"action {action.value} from (slot {source_slot}, "
                    f"{'T' if taken else 'NT'}) targets non-branch slot "
                    f"{target_slot}",
                    function=fn.name,
                )
                continue
            if target_slot not in tables.bcv_slots:
                sink.emit(
                    "COR208",
                    f"action {action.value} targets slot {target_slot}, "
                    f"which the BCV never verifies (dead table weight)",
                    function=fn.name,
                )
            if action in (BranchAction.SET_T, BranchAction.SET_NT):
                set_targets.add(target_slot)
    for slot in sorted(tables.bcv_slots & valid_slots):
        if slot not in set_targets:
            sink.emit(
                "COR209",
                f"slot {slot} is verified by the BCV but no SET action "
                f"ever predicts it (always UNKNOWN at runtime)",
                function=fn.name,
            )

    # -- the soundness proof itself -------------------------------------
    def_map = DefinitionMap(fn, module, purity)
    summaries = summarize_function(fn, def_map)
    label_of_slot: Dict[int, str] = {}
    for summary in summaries.values():
        if summary.branch_pc is not None and summary.branch_pc in slot_of_pc:
            label_of_slot[slot_of_pc[summary.branch_pc]] = summary.label

    unverifiable: Set[int] = set()
    for (source_slot, taken), entries in sorted(tables.bat.items()):
        if source_slot not in valid_slots:
            continue
        for target_slot, action in entries:
            if action not in (BranchAction.SET_T, BranchAction.SET_NT):
                continue
            if target_slot not in valid_slots:
                continue
            target = summaries[label_of_slot[target_slot]]
            claimed_taken = action is BranchAction.SET_T
            if target.check is None and target.const_outcome is None:
                if target_slot not in unverifiable:
                    unverifiable.add(target_slot)
                    sink.emit(
                        "COR206",
                        f"slot {target_slot} ({target.label}) receives SET "
                        f"actions but no check predicate is derivable from "
                        f"its branch",
                        function=fn.name,
                        block=target.label,
                        pc=target.branch_pc,
                    )
                continue
            witness = _prove_entry(
                summaries,
                tables,
                source=summaries[label_of_slot[source_slot]],
                taken=taken,
                target=target,
                target_slot=target_slot,
                claimed_taken=claimed_taken,
                transfers=transfers,
            )
            if witness is not None:
                sink.emit(
                    "COR205",
                    f"action {action.value} fired on "
                    f"({summaries[label_of_slot[source_slot]].label}, "
                    f"{'T' if taken else 'NT'}) predicts branch "
                    f"{target.label} but is not provable on all feasible "
                    f"paths: {witness}",
                    function=fn.name,
                    block=target.label,
                    pc=target.branch_pc,
                )


def _prove_entry(
    summaries: Dict[str, BlockSummary],
    tables: FunctionTables,
    source: BlockSummary,
    taken: bool,
    target: BlockSummary,
    target_slot: int,
    claimed_taken: bool,
    transfers: Optional[IPSummaries] = None,
) -> Optional[str]:
    """Prove one SET entry; returns None on success, else a witness
    description of why the proof failed.

    ``transfers`` makes the proof interprocedurally aware: call steps
    apply the callee's re-derived transfer image instead of clobbering
    to top.  Without it the proof is the opt-0/1 one.
    """
    # State at the firing edge: nothing is assumed about block entry
    # (the edge can be reached with any machine state), but the branch
    # direction and any in-block stores constrain what follows.
    env_out, snapshots = transfer_block(source, {}, transfers)
    seed = edge_environment(source, env_out, snapshots, taken)
    if seed is None:
        return None  # edge statically infeasible: vacuously sound
    first = source.taken_target if taken else source.fallthrough_target

    def prediction_overwritten(summary: BlockSummary, direction: bool) -> bool:
        """Liveness cut: crossing an edge whose BAT actions write the
        obligation's slot replaces the prediction — the runtime keeps a
        status until overwritten, so the obligation ends exactly here."""
        slot = tables.slot_of(summary.branch_pc)
        return slot is not None and any(
            entry_target == target_slot
            for entry_target, _ in tables.bat.get((slot, direction), ())
        )

    states = solve_range_mfp(
        summaries,
        {first: seed},
        should_cut=prediction_overwritten,
        transfers=transfers,
    )
    if target.label not in states:
        return None  # target unreachable while the prediction is live
    _, snapshots = transfer_block(target, states[target.label], transfers)
    if target.check is None:
        # Constant-condition branch: provable iff the constant agrees.
        if target.const_outcome == claimed_taken:
            return None
        return (
            f"branch condition is constant "
            f"{'taken' if target.const_outcome else 'not-taken'}"
        )
    observed = snapshots.get(target.check.term, ValueSet.top())
    claimed: OutcomeSet = target.check.outcome_set(claimed_taken)
    if observed.subset_of_outcome(claimed):
        return None
    return (
        f"value of {target.check.var} at the check is {observed}, "
        f"not within the claimed outcome set {claimed}"
    )


# ----------------------------------------------------------------------
# Binary image audit
# ----------------------------------------------------------------------


def audit_image(program) -> List[Diagnostic]:
    """Verify the §5.4 binary image against the in-memory tables."""
    sink = DiagnosticSink(IMAGE_PASS)
    if set(_ACTION_CODES) != set(BranchAction):
        missing = sorted(
            a.value for a in set(BranchAction) - set(_ACTION_CODES)
        )
        sink.emit(
            "IMG303",
            f"wire encoding is missing action(s): {missing}",
        )
        return sink.diagnostics  # round-trip would crash on missing codes

    image = program.to_image()
    loaded, entries = load_program(image)
    for name in sorted(program.tables.by_function):
        tables = program.tables.by_function[name]
        recovered = loaded.by_function.get(name)
        if recovered is None:
            sink.emit(
                "IMG301",
                "function record missing from the packed image",
                function=name,
            )
            continue
        mismatches = []
        if recovered.hash_params != tables.hash_params:
            mismatches.append("hash parameters")
        if tuple(recovered.branch_pcs) != tuple(tables.branch_pcs):
            mismatches.append("branch PCs")
        if recovered.bcv_slots != tables.bcv_slots:
            mismatches.append("BCV")
        if dict(recovered.bat) != {
            k: tuple(v) for k, v in tables.bat.items() if v
        }:
            mismatches.append("BAT")
        if mismatches:
            sink.emit(
                "IMG301",
                f"round-trip through the image changed: "
                f"{', '.join(mismatches)}",
                function=name,
            )
        if sort_records(recovered.provenance) != sort_records(
            tables.provenance
        ):
            sink.emit(
                "IMG304",
                f"provenance sidecar decoded to "
                f"{len(recovered.provenance)} record(s), tables carry "
                f"{len(tables.provenance)}; records must round-trip "
                f"exactly",
                function=name,
            )
        sizes = table_sizes(tables)
        expected_bcv = (sizes.bcv_bits + 7) // 8
        actual_bcv = len(_pack_bcv(tables))
        if actual_bcv != expected_bcv:
            sink.emit(
                "IMG302",
                f"packed BCV is {actual_bcv} bytes but the Fig. 8 "
                f"accounting says {sizes.bcv_bits} bits",
                function=name,
            )
        expected_bat = (sizes.bat_bits + 7) // 8
        actual_bat = len(_pack_bat(tables)[0])
        if actual_bat != expected_bat:
            sink.emit(
                "IMG302",
                f"packed BAT is {actual_bat} bytes but the Fig. 8 "
                f"accounting says {sizes.bat_bits} bits",
                function=name,
            )
    for name, entry in sorted(entries.items()):
        expected_entry = program.module.function_extent(name)[0]
        if entry != expected_entry:
            sink.emit(
                "IMG301",
                f"function info table records entry {entry:#x}, "
                f"code is at {expected_entry:#x}",
                function=name,
            )
    return sink.diagnostics
