"""Independent per-block branch-implication facts for the auditor.

This module re-derives, from scratch, the facts the BAT construction
gets from :mod:`repro.analysis.branch_info` — but with a *forward*
symbolic walk over each block instead of the builder's backward chain
walk, so the two implementations share no reasoning code.  For every
block the walk produces a :class:`BlockSummary`:

* ``steps`` — an interval-transfer program (loads snapshot the current
  range of a variable; stores rewrite it; clobbers from indirect stores
  and calls reset it), used by the MFP to push abstract environments
  through the block;
* ``check`` — how the block's conditional branch outcome follows from
  one loaded value (``outcome == op(value, bound)``);
* ``constraints`` — per direction, the ranges the branch outcome
  implies for the *memory copies* of variables at block exit.  A
  constraint exists only when memory provably still mirrors the value
  the branch tested (no potential store in between) — the same "clean
  gap" rule the paper needs for sound inference;
* ``const_outcome`` — set when the branch condition folds to a
  constant (fuel for the dead-branch detector).

Symbolic values are affine forms ``sign * t + offset`` over *load
terms* (the value observed by one particular load), plus constants and
materialized 0/1 comparisons, which covers exactly the condition
shapes the mini-C lowering emits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.branch_info import OutcomeSet
from ..analysis.defs import DefinitionMap
from ..ir.function import BasicBlock, IRFunction
from ..ir.instructions import (
    BinOp,
    Call,
    CondBranch,
    Const,
    Cmp,
    Jump,
    Load,
    Reg,
    RelOp,
    Return,
    Store,
    UnOp,
    Variable,
)
from .domain import Env, ValueSet, env_get, env_set


@dataclass(frozen=True)
class LoadTerm:
    """The value observed by the load at ``block[index]`` of ``var``."""

    var: Variable
    index: int
    block: str

    def __str__(self) -> str:
        return f"load({self.var})@{self.block}[{self.index}]"


@dataclass(frozen=True)
class RegTerm:
    """An opaque value entering the block through a register defined
    elsewhere.  Its range is unknown (no snapshot), but a branch on it
    still correlates with stores of the same register — the builder's
    "chain leaves the block" case."""

    reg: Reg

    def __str__(self) -> str:
        return f"reg({self.reg})"


Term = Union[LoadTerm, RegTerm]


@dataclass(frozen=True)
class _AffineExpr:
    """``sign * term + offset`` (``term`` None means a plain constant)."""

    term: Optional[Term]
    sign: int
    offset: int

    @property
    def is_const(self) -> bool:
        return self.term is None


@dataclass(frozen=True)
class _CmpExpr:
    """A materialized 0/1 comparison: 1 iff ``sign*t + offset op bound``."""

    term: Term
    sign: int
    offset: int
    op: RelOp
    bound: int


_Expr = Union[_AffineExpr, _CmpExpr]


@dataclass(frozen=True)
class CheckFact:
    """Branch outcome == ``op(value(term), bound)`` for the block's
    conditional branch, where ``term`` is a load of ``var``."""

    var: Variable
    term: LoadTerm
    op: RelOp
    bound: int

    def outcome_set(self, taken: bool) -> OutcomeSet:
        return OutcomeSet.from_relop(self.op, self.bound, taken)


#: Interval-transfer steps: ("load", term) | ("store", var, spec) |
#: ("call", callee, (vars...)) | ("clobber", (vars...)).  Store specs:
#: ("const", c) | ("affine", term, sign, offset) | ("top",).  A call
#: step names the callee so summary-aware transfers can apply its
#: interprocedural image instead of a plain clobber.
Step = Tuple


@dataclass
class BlockSummary:
    """Everything the MFP passes need to know about one block."""

    label: str
    steps: List[Step] = field(default_factory=list)
    check: Optional[CheckFact] = None
    const_outcome: Optional[bool] = None
    #: direction -> ((variable, implied outcome set at block exit), ...)
    constraints: Dict[bool, Tuple[Tuple[Variable, OutcomeSet], ...]] = field(
        default_factory=dict
    )
    branch_pc: Optional[int] = None
    taken_target: Optional[str] = None
    fallthrough_target: Optional[str] = None
    jump_target: Optional[str] = None
    is_return: bool = False


def _solve_affine(op: RelOp, bound: int, sign: int, offset: int) -> Tuple[RelOp, int]:
    """Rewrite ``sign*x + offset OP bound`` as ``x OP' bound'``."""
    if sign == 1:
        return op, bound - offset
    return op.swap(), offset - bound


def outcome_image(outcome: OutcomeSet, sign: int, offset: int) -> OutcomeSet:
    """The set ``{sign*x + offset : x in outcome}`` (sign is ±1)."""
    if outcome.interval is not None:
        interval = outcome.interval
        if sign == -1:
            interval = interval.negate()
        return OutcomeSet(interval=interval.shift(offset))
    return OutcomeSet(hole=sign * outcome.hole + offset)


def _resolve_operand(env: Dict[Reg, _Expr], operand) -> Optional[_Expr]:
    if isinstance(operand, int):
        return _AffineExpr(None, 1, operand)
    expr = env.get(operand)
    if expr is None and isinstance(operand, Reg):
        # Defined in another block: opaque, but correlatable.
        expr = _AffineExpr(RegTerm(operand), 1, 0)
        env[operand] = expr
    return expr


def _add(a: _AffineExpr, b: _AffineExpr) -> Optional[_AffineExpr]:
    if a.term is not None and b.term is not None:
        return None
    term = a.term or b.term
    sign = a.sign if a.term is not None else b.sign
    return _AffineExpr(term, sign if term else 1, a.offset + b.offset)


def _negate(a: _AffineExpr) -> _AffineExpr:
    return _AffineExpr(a.term, -a.sign, -a.offset)


def _fold_binop(op: str, lhs: _Expr, rhs: _Expr) -> Optional[_Expr]:
    if not isinstance(lhs, _AffineExpr) or not isinstance(rhs, _AffineExpr):
        return None
    if op == "+":
        return _add(lhs, rhs)
    if op == "-":
        return _add(lhs, _negate(rhs))
    if lhs.is_const and rhs.is_const:
        a, b = lhs.offset, rhs.offset
        try:
            if op == "*":
                return _AffineExpr(None, 1, a * b)
            if op == "/":
                return _AffineExpr(None, 1, int(a / b)) if b else None
            if op == "%":
                return _AffineExpr(None, 1, a - int(a / b) * b) if b else None
        except (OverflowError, ValueError):  # pragma: no cover - defensive
            return None
    return None


def _branch_relation(
    expr: Optional[_Expr], op: RelOp, rhs
) -> Tuple[Optional[bool], Optional[Tuple[LoadTerm, RelOp, int]]]:
    """Interpret ``expr OP rhs``: a constant outcome, a relation on a
    load term, or nothing."""
    if not isinstance(rhs, int) or expr is None:
        return None, None
    if isinstance(expr, _AffineExpr):
        if expr.is_const:
            return op.evaluate(expr.offset, rhs), None
        eff_op, eff_bound = _solve_affine(op, rhs, expr.sign, expr.offset)
        return None, (expr.term, eff_op, eff_bound)
    # Materialized comparison: the branch tests a 0/1 value.
    truth_if_true = op.evaluate(1, rhs)
    truth_if_false = op.evaluate(0, rhs)
    if truth_if_true and truth_if_false:
        return True, None
    if not truth_if_true and not truth_if_false:
        return False, None
    inner_op = expr.op if truth_if_true else expr.op.negate()
    eff_op, eff_bound = _solve_affine(inner_op, expr.bound, expr.sign, expr.offset)
    return None, (expr.term, eff_op, eff_bound)


def summarize_block(
    fn: IRFunction, block: BasicBlock, def_map: DefinitionMap
) -> BlockSummary:
    """Run the forward symbolic walk over one block."""
    summary = BlockSummary(label=block.label)
    env: Dict[Reg, _Expr] = {}
    mem_expr: Dict[Variable, Optional[_AffineExpr]] = {}

    for index, instruction in enumerate(block.instructions):
        if isinstance(instruction, Const):
            env[instruction.dest] = _AffineExpr(None, 1, instruction.value)
        elif isinstance(instruction, BinOp):
            lhs = _resolve_operand(env, instruction.lhs)
            rhs = _resolve_operand(env, instruction.rhs)
            folded = (
                _fold_binop(instruction.op, lhs, rhs)
                if lhs is not None and rhs is not None
                else None
            )
            if folded is not None:
                env[instruction.dest] = folded
            else:
                env.pop(instruction.dest, None)
        elif isinstance(instruction, UnOp):
            src = _resolve_operand(env, instruction.src)
            result: Optional[_Expr] = None
            if instruction.op == "-" and isinstance(src, _AffineExpr):
                result = _negate(src)
            elif instruction.op == "!":
                if isinstance(src, _AffineExpr) and src.is_const:
                    result = _AffineExpr(None, 1, int(src.offset == 0))
                elif isinstance(src, _AffineExpr):
                    result = _CmpExpr(
                        src.term, src.sign, src.offset, RelOp.EQ, 0
                    )
                elif isinstance(src, _CmpExpr):
                    result = _CmpExpr(
                        src.term, src.sign, src.offset, src.op.negate(), src.bound
                    )
            if result is not None:
                env[instruction.dest] = result
            else:
                env.pop(instruction.dest, None)
        elif isinstance(instruction, Cmp):
            lhs = _resolve_operand(env, instruction.lhs)
            rhs = _resolve_operand(env, instruction.rhs)
            result = None
            if isinstance(lhs, _AffineExpr) and isinstance(rhs, _AffineExpr):
                if lhs.is_const and rhs.is_const:
                    result = _AffineExpr(
                        None,
                        1,
                        int(instruction.op.evaluate(lhs.offset, rhs.offset)),
                    )
                elif rhs.is_const:
                    result = _CmpExpr(
                        lhs.term, lhs.sign, lhs.offset, instruction.op, rhs.offset
                    )
                elif lhs.is_const:
                    result = _CmpExpr(
                        rhs.term,
                        rhs.sign,
                        rhs.offset,
                        instruction.op.swap(),
                        lhs.offset,
                    )
            if result is not None:
                env[instruction.dest] = result
            else:
                env.pop(instruction.dest, None)
        elif isinstance(instruction, Load):
            term = LoadTerm(instruction.var, index, block.label)
            summary.steps.append(("load", term))
            expr = _AffineExpr(term, 1, 0)
            env[instruction.dest] = expr
            # A load re-anchors memory knowledge: the content is, by
            # definition, exactly what the load observed.
            mem_expr[instruction.var] = expr
        elif isinstance(instruction, Store):
            value = _resolve_operand(env, instruction.src)
            if isinstance(value, _AffineExpr) and value.is_const:
                summary.steps.append(
                    ("store", instruction.var, ("const", value.offset))
                )
                mem_expr[instruction.var] = value
            elif isinstance(value, _AffineExpr):
                summary.steps.append(
                    (
                        "store",
                        instruction.var,
                        ("affine", value.term, value.sign, value.offset),
                    )
                )
                mem_expr[instruction.var] = value
            else:
                summary.steps.append(("store", instruction.var, ("top",)))
                mem_expr[instruction.var] = None
        elif isinstance(instruction, (Jump, Return)):
            summary.is_return = isinstance(instruction, Return)
            if isinstance(instruction, Jump):
                summary.jump_target = instruction.target
        elif isinstance(instruction, CondBranch):
            summary.branch_pc = instruction.address
            summary.taken_target = instruction.taken
            summary.fallthrough_target = instruction.fallthrough
            expr = env.get(instruction.lhs)
            const_outcome, relation = _branch_relation(
                expr, instruction.op, instruction.rhs
            )
            summary.const_outcome = const_outcome
            if relation is not None:
                term, eff_op, eff_bound = relation
                if isinstance(term, LoadTerm):
                    summary.check = CheckFact(term.var, term, eff_op, eff_bound)
                for taken in (True, False):
                    implied: List[Tuple[Variable, OutcomeSet]] = []
                    value_set = OutcomeSet.from_relop(eff_op, eff_bound, taken)
                    for var, content in mem_expr.items():
                        if content is None or content.term != term:
                            continue
                        image = outcome_image(
                            value_set, content.sign, content.offset
                        )
                        if not image.is_trivial:
                            implied.append((var, image))
                    summary.constraints[taken] = tuple(implied)
        else:
            # AddrOf, LoadIndirect, Call destinations are untracked.
            dest = getattr(instruction, "dest", None)
            if isinstance(dest, Reg):
                env.pop(dest, None)

        # Potential writes from indirect stores and calls invalidate
        # both the interval state (clobber/call step) and the symbolic
        # memory mirror.  Direct stores were handled exactly above.
        # Calls keep their callee name so a summary-aware transfer can
        # apply the callee's interprocedural image instead of top.
        if isinstance(instruction, Store):
            continue
        sites = def_map.at(block.label, index)
        if sites:
            affected = tuple(
                sorted({s.var for s in sites}, key=lambda v: (v.name, v.uid))
            )
            if isinstance(instruction, Call):
                summary.steps.append(("call", instruction.callee, affected))
            else:
                summary.steps.append(("clobber", affected))
            for var in affected:
                mem_expr[var] = None

    if not summary.constraints and summary.branch_pc is not None:
        summary.constraints = {True: (), False: ()}
    return summary


def summarize_function(
    fn: IRFunction, def_map: DefinitionMap
) -> Dict[str, BlockSummary]:
    return {
        block.label: summarize_block(fn, block, def_map)
        for block in fn.blocks
    }


# ----------------------------------------------------------------------
# Abstract transfer: pushing environments through a summary
# ----------------------------------------------------------------------


def transfer_block(
    summary: BlockSummary, env_in: Env, transfers=None
) -> Tuple[Env, Dict[Term, ValueSet]]:
    """Run the interval-transfer steps over an input environment.

    Returns the exit environment and the *snapshots*: the value set
    each load observed, which is what branch conditions actually test.

    ``transfers`` (an :class:`repro.staticcheck.ipsummaries.IPSummaries`
    or anything with ``call_image(callee, var, values)``) makes call
    steps apply the callee's interprocedural image; without it a call
    clobbers its affected variables to top, exactly the opt-0/1
    behaviour.
    """
    env: Env = dict(env_in)
    snapshots: Dict[Term, ValueSet] = {}
    for step in summary.steps:
        kind = step[0]
        if kind == "load":
            snapshots[step[1]] = env_get(env, step[1].var)
        elif kind == "store":
            _, var, spec = step
            if spec[0] == "const":
                env_set(env, var, ValueSet.point(spec[1]))
            elif spec[0] == "affine":
                _, term, sign, offset = spec
                base = snapshots.get(term, ValueSet.top())
                env_set(env, var, base.affine_image(sign, offset))
            else:
                env_set(env, var, ValueSet.top())
        elif kind == "call":
            _, callee, affected = step
            for var in affected:
                if transfers is None:
                    env_set(env, var, ValueSet.top())
                else:
                    env_set(
                        env,
                        var,
                        transfers.call_image(callee, var, env_get(env, var)),
                    )
        else:  # clobber
            for var in step[1]:
                env_set(env, var, ValueSet.top())
    return env, snapshots


def edge_environment(
    summary: BlockSummary,
    env_out: Env,
    snapshots: Dict[Term, ValueSet],
    taken: bool,
) -> Optional[Env]:
    """The environment that flows along one conditional edge, refined
    by everything the branch direction implies — or ``None`` when the
    direction is statically infeasible from this state."""
    if summary.const_outcome is not None and summary.const_outcome != taken:
        return None
    if summary.check is not None:
        tested = snapshots.get(summary.check.term, ValueSet.top())
        if tested.intersect_outcome(summary.check.outcome_set(taken)).is_empty:
            return None
    env: Env = dict(env_out)
    for var, outcome in summary.constraints.get(taken, ()):
        refined = env_get(env, var).intersect_outcome(outcome)
        if refined.is_empty:
            return None
        env_set(env, var, refined)
    return env
