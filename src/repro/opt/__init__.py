"""Optimization passes and the standard pipeline.

``optimize_module(module)`` applies constant propagation, block-local
store-to-load forwarding, and dead-code elimination to a fixpoint, then
re-finalizes the module (fresh addresses, pruned unreachable blocks).
Used by ``compile_program(..., opt_level=1)`` and by the optimization
ablation bench.
"""

from ..ir.function import IRModule
from .constprop import constant_propagation
from .dce import dead_code_elimination
from .dse import dead_store_elimination
from .forwarding import store_to_load_forwarding
from .framework import PassPipeline, PassStats
from .substitute import substitute_uses

STANDARD_PASSES = (
    ("constprop", constant_propagation),
    ("forwarding", store_to_load_forwarding),
    ("dse", dead_store_elimination),
    ("dce", dead_code_elimination),
)


def optimize_module(module: IRModule) -> PassStats:
    """Run the standard pipeline on a module (mutating it)."""
    return PassPipeline(STANDARD_PASSES).run(module)


__all__ = [
    "PassPipeline",
    "PassStats",
    "STANDARD_PASSES",
    "constant_propagation",
    "dead_code_elimination",
    "dead_store_elimination",
    "optimize_module",
    "store_to_load_forwarding",
    "substitute_uses",
]
