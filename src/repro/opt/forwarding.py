"""Block-local store-to-load forwarding and redundant load elimination.

Within one basic block, a load of ``v`` after a store to ``v`` (or
after an earlier load of ``v``) can reuse the in-register value instead
of touching memory.  This is the optimization the paper calls out as
*removing correlations*: the second access disappears, so the checked
branch loses its load and (at best) degrades to store-based inference
(Fig. 3.b), or becomes unanalyzable.

Kill rules keep the forwarding sound:

* an indirect store kills the variables it may alias (or everything
  when the alias set is unknown at this point in the pipeline);
* a call to a user function kills everything (its effect summary is
  not available to this local pass); builtins (``read_int``/``emit``)
  touch no program memory and kill nothing.

Forwarded int values rewrite the load into a ``Const`` (preserving the
destination register); forwarded register values substitute uses
function-wide and leave the dead load for DCE.
"""

from __future__ import annotations

from typing import Dict

from ..ir.builder import BUILTINS
from ..ir.function import IRFunction, IRModule
from ..ir.instructions import (
    Call,
    Const,
    Load,
    Operand,
    Reg,
    Store,
    StoreIndirect,
    Variable,
)
from .substitute import substitute_uses


def store_to_load_forwarding(fn: IRFunction, module: IRModule) -> int:
    """One round of block-local forwarding; returns the change count."""
    changed = 0
    substitutions: Dict[Reg, Operand] = {}
    for block in fn.blocks:
        known: Dict[Variable, Operand] = {}
        for index, instruction in enumerate(block.instructions):
            if isinstance(instruction, Load):
                value = known.get(instruction.var)
                if value is None:
                    known[instruction.var] = instruction.dest
                elif isinstance(value, int):
                    replacement = Const(instruction.dest, value)
                    replacement.address = instruction.address
                    block.instructions[index] = replacement
                    changed += 1
                else:
                    if value != instruction.dest:
                        substitutions[instruction.dest] = value
            elif isinstance(instruction, Store):
                known[instruction.var] = instruction.src
            elif isinstance(instruction, StoreIndirect):
                if instruction.may_alias:
                    for var in instruction.may_alias:
                        known.pop(var, None)
                else:
                    known.clear()
            elif isinstance(instruction, Call):
                if instruction.callee not in BUILTINS:
                    known.clear()
    changed += substitute_uses(fn, substitutions)
    return changed
