"""Dead store elimination (liveness-based).

Removes a direct store to a local or parameter when the variable is
*dead* immediately after the store — no path reaches a read before a
certain overwrite — and the variable never has its address taken
anywhere in the module (so no indirect access path or callee can
observe it).  Globals are never touched: any function might read them
after we return.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..analysis.liveness import VariableLiveness
from ..ir.function import IRFunction, IRModule
from ..ir.instructions import AddrOf, Store, Variable, VarKind


def dead_store_elimination(fn: IRFunction, module: IRModule) -> int:
    """One round of DSE; returns the number of stores removed."""
    fn.compute_edges()  # liveness walks successor edges
    address_taken: Set[Variable] = set()
    for other in module.functions:
        for instruction in other.instructions():
            if isinstance(instruction, AddrOf):
                address_taken.add(instruction.var)
    liveness = VariableLiveness(fn, module)

    doomed: List[Tuple[str, int]] = []
    for block in fn.blocks:
        for index, instruction in enumerate(block.instructions):
            if (
                isinstance(instruction, Store)
                and instruction.var.kind in (VarKind.LOCAL, VarKind.PARAM)
                and instruction.var not in address_taken
                and instruction.var not in liveness.live_after(block.label, index)
            ):
                doomed.append((block.label, index))
    for label, index in sorted(doomed, reverse=True):
        del fn.block(label).instructions[index]
    return len(doomed)
