"""Operand substitution utilities shared by the passes.

Registers are single-assignment and definitions dominate uses, so
replacing every use of a register with an equivalent operand is sound
function-wide.  Fields that structurally require a register
(``CondBranch.lhs``, indirect-access addresses) only accept register
replacements; constant replacements leave those uses in place and the
defining instruction alive.
"""

from __future__ import annotations

from typing import Dict

from ..ir.function import IRFunction
from ..ir.instructions import BinOp, Call, Cmp, CondBranch, LoadIndirect, Operand, Reg, Return, Store, StoreIndirect, UnOp


def substitute_uses(fn: IRFunction, mapping: Dict[Reg, Operand]) -> int:
    """Replace register uses per ``mapping``; returns replacement count."""
    if not mapping:
        return 0
    changed = 0

    def swap(value, reg_only: bool = False):
        nonlocal changed
        if isinstance(value, Reg) and value in mapping:
            replacement = mapping[value]
            if reg_only and not isinstance(replacement, Reg):
                return value
            changed += 1
            return replacement
        return value

    for block in fn.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, (BinOp, Cmp)):
                instruction.lhs = swap(instruction.lhs)
                instruction.rhs = swap(instruction.rhs)
            elif isinstance(instruction, UnOp):
                instruction.src = swap(instruction.src)
            elif isinstance(instruction, Store):
                instruction.src = swap(instruction.src)
            elif isinstance(instruction, StoreIndirect):
                instruction.addr = swap(instruction.addr, reg_only=True)
                instruction.src = swap(instruction.src)
            elif isinstance(instruction, LoadIndirect):
                instruction.addr = swap(instruction.addr, reg_only=True)
            elif isinstance(instruction, Call):
                instruction.args = [swap(a) for a in instruction.args]
            elif isinstance(instruction, CondBranch):
                instruction.lhs = swap(instruction.lhs, reg_only=True)
                instruction.rhs = swap(instruction.rhs)
            elif isinstance(instruction, Return):
                if instruction.value is not None:
                    instruction.value = swap(instruction.value)
    return changed
