"""Dead code elimination.

Removes side-effect-free instructions whose destination register is
never used: constants, arithmetic, comparisons, address computations,
and loads (loads cannot fault in this memory model).  Division and
modulo are only removable when the divisor is a nonzero constant —
otherwise deleting them would also delete a potential runtime fault.
"""

from __future__ import annotations

from typing import Set

from ..ir.function import IRFunction, IRModule
from ..ir.instructions import (
    AddrOf,
    BinOp,
    Cmp,
    Const,
    Load,
    Reg,
    UnOp,
    used_regs,
)

_REMOVABLE = (Const, BinOp, UnOp, Cmp, Load, AddrOf)


def _is_removable(instruction) -> bool:
    if not isinstance(instruction, _REMOVABLE):
        return False
    if isinstance(instruction, BinOp) and instruction.op in ("/", "%"):
        return isinstance(instruction.rhs, int) and instruction.rhs != 0
    return True


def dead_code_elimination(fn: IRFunction, module: IRModule) -> int:
    """One round of DCE; returns the number of instructions removed."""
    used: Set[Reg] = set()
    for block in fn.blocks:
        for instruction in block.instructions:
            used.update(used_regs(instruction))
    removed = 0
    for block in fn.blocks:
        kept = []
        for instruction in block.instructions:
            dest = getattr(instruction, "dest", None)
            if (
                isinstance(dest, Reg)
                and dest not in used
                and _is_removable(instruction)
            ):
                removed += 1
                continue
            kept.append(instruction)
        block.instructions = kept
    return removed
