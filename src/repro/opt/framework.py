"""Optimization pass framework.

Passes mutate an :class:`IRModule` in place and must preserve program
semantics exactly (differential tests in ``tests/test_opt_passes.py``
check random programs with and without optimization).  The paper
observes that "compiler optimizations can remove some correlations,
reducing the detection rate" — these passes exist to measure that
effect (``benchmarks/bench_opt_ablation.py``) and to exercise the
store-based inference path (Fig. 3.b) that only appears once loads are
forwarded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Sequence

from ..ir.function import IRFunction, IRModule

#: A pass transforms one function and reports how many changes it made.
FunctionPass = Callable[[IRFunction, IRModule], int]


@dataclass
class PassStats:
    """Per-pass change counts from one pipeline run."""

    changes: Dict[str, int] = field(default_factory=dict)

    def record(self, name: str, count: int) -> None:
        self.changes[name] = self.changes.get(name, 0) + count

    @property
    def total(self) -> int:
        return sum(self.changes.values())


class PassPipeline:
    """Runs a pass list to a fixpoint (bounded), then re-finalizes."""

    def __init__(self, passes: Sequence[tuple], max_iterations: int = 8):
        self._passes = list(passes)  # (name, FunctionPass)
        self._max_iterations = max_iterations

    def run(self, module: IRModule) -> PassStats:
        stats = PassStats()
        for _ in range(self._max_iterations):
            changed = 0
            for fn in module.functions:
                for name, fn_pass in self._passes:
                    count = fn_pass(fn, module)
                    stats.record(name, count)
                    changed += count
            if not changed:
                break
        module.finalize()
        return stats
