"""Constant propagation and folding.

Function-wide (registers are single-assignment): any register defined
by a ``Const`` is that constant everywhere; arithmetic over constants
folds; conditional branches over constants fold to jumps.  Division by
a (possibly zero) constant is never folded away when it could fault —
the fault must happen at the same program point as unoptimized code.
"""

from __future__ import annotations

from typing import Dict

from ..ir.function import IRFunction, IRModule
from ..ir.instructions import (
    BinOp,
    Cmp,
    CondBranch,
    Const,
    Jump,
    Reg,
    UnOp,
)
from .substitute import substitute_uses


def _fold_binop(op: str, lhs: int, rhs: int) -> int:
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    quotient = abs(lhs) // abs(rhs)
    if (lhs < 0) != (rhs < 0):
        quotient = -quotient
    return quotient if op == "/" else lhs - quotient * rhs


def constant_propagation(fn: IRFunction, module: IRModule) -> int:
    """One round of propagate + fold; returns the change count."""
    constants: Dict[Reg, int] = {}
    for block in fn.blocks:
        for instruction in block.instructions:
            if isinstance(instruction, Const):
                constants[instruction.dest] = instruction.value
    changed = substitute_uses(fn, dict(constants))

    for block in fn.blocks:
        for index, instruction in enumerate(block.instructions):
            if isinstance(instruction, BinOp):
                if isinstance(instruction.lhs, int) and isinstance(
                    instruction.rhs, int
                ):
                    if instruction.op in ("/", "%") and instruction.rhs == 0:
                        continue  # preserve the runtime fault
                    block.instructions[index] = _as_const(
                        instruction.dest,
                        _fold_binop(
                            instruction.op, instruction.lhs, instruction.rhs
                        ),
                        instruction,
                    )
                    changed += 1
            elif isinstance(instruction, Cmp):
                if isinstance(instruction.lhs, int) and isinstance(
                    instruction.rhs, int
                ):
                    block.instructions[index] = _as_const(
                        instruction.dest,
                        int(
                            instruction.op.evaluate(
                                instruction.lhs, instruction.rhs
                            )
                        ),
                        instruction,
                    )
                    changed += 1
            elif isinstance(instruction, UnOp):
                if isinstance(instruction.src, int):
                    value = (
                        -instruction.src
                        if instruction.op == "-"
                        else int(instruction.src == 0)
                    )
                    block.instructions[index] = _as_const(
                        instruction.dest, value, instruction
                    )
                    changed += 1
            elif isinstance(instruction, CondBranch):
                lhs = constants.get(instruction.lhs)
                rhs = (
                    instruction.rhs
                    if isinstance(instruction.rhs, int)
                    else constants.get(instruction.rhs)
                )
                if lhs is not None and rhs is not None:
                    taken = instruction.op.evaluate(lhs, rhs)
                    target = (
                        instruction.taken if taken else instruction.fallthrough
                    )
                    jump = Jump(target)
                    jump.address = instruction.address
                    block.instructions[index] = jump
                    changed += 1
    return changed


def _as_const(dest: Reg, value: int, original) -> Const:
    replacement = Const(dest, value)
    replacement.address = original.address
    return replacement
