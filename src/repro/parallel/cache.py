"""Content-addressed compile cache for :class:`ProtectedProgram`.

Campaigns and benchmark drivers compile the same ten workload sources
over and over; parsing, lowering and table building dominate their
startup cost.  This module memoizes the whole ``parse -> lower ->
verify -> optimize -> build tables`` pipeline behind a content address:

    key = sha256(schema version, source name, opt_level, source text)

Two layers:

* **memory** — a per-process dict.  Always on.  Guarantees each
  workload's :class:`ProtectedProgram` is built at most once per
  process, no matter how many attacks or benchmark fixtures ask for it.
  Concurrent lookups of the same key are *single-flight*: the first
  thread compiles while the rest block on a per-key latch and then read
  the published program — this is what lets the detection daemon
  (:mod:`repro.service`) run many sessions of one workload while
  compiling its tables exactly once.
* **disk** — optional, enabled by pointing ``REPRO_COMPILE_CACHE`` at a
  directory.  Entries are pickled programs named ``<key>.pkl`` and
  written atomically, so concurrent shard workers can share one cache
  directory.  Because the key covers the full source text and the
  compiler options, invalidation is automatic: editing a source or
  changing ``opt_level`` produces a new key, and stale entries are
  simply never read again.  Bump :data:`CACHE_SCHEMA` when the compiled
  representation itself changes shape.

The disk layer loads pickles, so only point ``REPRO_COMPILE_CACHE`` at
a directory you trust (the same caveat as any pickle-based cache).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..pipeline import ProtectedProgram

#: Version salt for the cache key; bump when ``ProtectedProgram``'s
#: pickled shape or the compilation pipeline changes incompatibly.
CACHE_SCHEMA = 4

#: Environment variable naming the disk cache directory.  Unset (or set
#: to ``""``, ``"0"`` or ``"off"``) leaves only the in-memory layer on.
CACHE_ENV = "REPRO_COMPILE_CACHE"

_DISABLED_VALUES = ("", "0", "off", "none")


@dataclass
class CacheStats:
    """Hit/miss counters for the compile cache (per process)."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup in [0, 1] (0.0 before any lookup)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.memory_hits, self.disk_hits, self.misses)

    def since(self, baseline: "CacheStats") -> "CacheStats":
        """The delta relative to an earlier snapshot (daemon uptime view)."""
        return CacheStats(
            memory_hits=self.memory_hits - baseline.memory_hits,
            disk_hits=self.disk_hits - baseline.disk_hits,
            misses=self.misses - baseline.misses,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "lookups": self.lookups,
            "hit_rate": round(self.hit_rate, 4),
        }


_memory: Dict[str, "ProtectedProgram"] = {}
_stats = CacheStats()
_lock = threading.Lock()
#: Per-key latches for compiles currently in flight; waiters block on
#: the latch instead of duplicating the compile (single-flight).
_inflight: Dict[str, threading.Event] = {}


def compile_fingerprint(
    source: str, name: str = "<source>", opt_level: int = 0
) -> str:
    """The content address of one compilation request."""
    digest = hashlib.sha256()
    digest.update(f"repro-compile:v{CACHE_SCHEMA}\n".encode("utf-8"))
    digest.update(f"{name}\n{opt_level}\n".encode("utf-8"))
    digest.update(source.encode("utf-8"))
    return digest.hexdigest()


def cache_dir() -> Optional[Path]:
    """The disk-cache directory, or ``None`` when the layer is off."""
    raw = os.environ.get(CACHE_ENV)
    if raw is None or raw.strip().lower() in _DISABLED_VALUES:
        return None
    return Path(raw).expanduser()


def _disk_load(key: str) -> Optional["ProtectedProgram"]:
    root = cache_dir()
    if root is None:
        return None
    path = root / f"{key}.pkl"
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        # Missing, corrupt or schema-incompatible entry: recompile.
        return None


def _disk_store(key: str, program: "ProtectedProgram") -> None:
    root = cache_dir()
    if root is None:
        return
    try:
        root.mkdir(parents=True, exist_ok=True)
        # Atomic publish: concurrent writers race benignly, the last
        # rename wins and every reader sees a complete pickle.
        fd, tmp_name = tempfile.mkstemp(dir=root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(program, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, root / f"{key}.pkl")
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
    except OSError:
        # A read-only or full cache directory silently degrades to the
        # in-memory layer; caching must never break compilation.
        pass


def cached_compile(
    source: str, name: str = "<source>", opt_level: int = 0
) -> "ProtectedProgram":
    """Compile via the cache (memory first, then disk, then for real).

    Thread-safe and single-flight: when several threads request the
    same key at once (concurrent daemon sessions on one workload), one
    compiles and the others wait for the published result — counted as
    memory hits, because they never ran the compiler.
    """
    key = compile_fingerprint(source, name, opt_level)
    while True:
        with _lock:
            program = _memory.get(key)
            if program is not None:
                _stats.memory_hits += 1
                return program
            latch = _inflight.get(key)
            if latch is None:
                _inflight[key] = threading.Event()
                break
        # Someone else is compiling this key: wait for the latch, then
        # retry the lookup (it re-compiles only if the leader failed).
        latch.wait()
    try:
        program = _disk_load(key)
        if program is not None:
            with _lock:
                _stats.disk_hits += 1
                _memory.setdefault(key, program)
            return program
        from ..pipeline import compile_program

        program = compile_program(source, name, opt_level)
        with _lock:
            _stats.misses += 1
            _memory[key] = program
        _disk_store(key, program)
        return program
    finally:
        with _lock:
            latch = _inflight.pop(key, None)
        if latch is not None:
            latch.set()


def compile_cache_stats() -> CacheStats:
    """A snapshot of this process's cache counters."""
    with _lock:
        return _stats.snapshot()


def reset_compile_cache(disk: bool = False) -> None:
    """Drop the in-memory layer (and optionally the disk entries)."""
    with _lock:
        _memory.clear()
        _stats.memory_hits = 0
        _stats.disk_hits = 0
        _stats.misses = 0
    if disk:
        root = cache_dir()
        if root is None or not root.is_dir():
            return
        for path in root.glob("*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
