"""Parallel campaign engine: compile cache + sharded execution.

Public surface:

* :func:`run_campaign` / :func:`run_workload_sharded` /
  :func:`run_clean_sweep` — deterministic sharded campaigns (same
  merged outcomes at any ``jobs``);
* :func:`cached_compile` and friends — the content-addressed compile
  cache both the serial and sharded paths go through.
"""

from .cache import (
    CACHE_ENV,
    CacheStats,
    cache_dir,
    cached_compile,
    compile_cache_stats,
    compile_fingerprint,
    reset_compile_cache,
)
from .engine import (
    MAX_JOBS,
    CleanTask,
    ShardResult,
    ShardTask,
    merge_outcomes,
    run_campaign,
    run_clean_sweep,
    run_workload_sharded,
    shard_indices,
)

__all__ = [
    "CACHE_ENV",
    "CacheStats",
    "CleanTask",
    "MAX_JOBS",
    "ShardResult",
    "ShardTask",
    "cache_dir",
    "cached_compile",
    "compile_cache_stats",
    "compile_fingerprint",
    "merge_outcomes",
    "reset_compile_cache",
    "run_campaign",
    "run_clean_sweep",
    "run_workload_sharded",
    "shard_indices",
]
