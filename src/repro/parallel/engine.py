"""Sharded campaign execution over a process pool.

The Figure-7 methodology runs ``attacks`` independent attacks per
workload; every attack already derives its RNG from a pure function of
``(seed_prefix, workload name, attack index)`` (see
:func:`repro.attacks.campaign.attack_rng`), so attacks can execute in
any order, on any process, and still reproduce the serial campaign
bit-for-bit.  This engine exploits that: it slices each workload's
index range into contiguous shards, runs shards on a
:class:`~concurrent.futures.ProcessPoolExecutor`, and merges outcomes
back into index order.  ``jobs=1`` short-circuits to a plain serial
loop, and the merged result is identical at any job count.

Workers receive only primitives (workload *names* plus scalar knobs) —
each worker resolves the workload from the registry and compiles it
through the content-addressed compile cache, so a workload's
:class:`ProtectedProgram` is built at most once per process regardless
of how many shards land there.

Zero false positives stays a *global* assertion: any clean-run alarm
raises :class:`~repro.attacks.campaign.CampaignError` inside the
worker, which propagates out of :func:`run_campaign` after cancelling
the remaining shards.
"""

from __future__ import annotations

import random
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..attacks.campaign import (
    AttackOutcome,
    CampaignError,
    CampaignSummary,
    WorkloadResult,
    run_attack,
)
from ..observability.metrics import MetricsRegistry
from ..observability.tracing import TraceContext, Tracer, maybe_span
from ..pipeline import monitored_run
from ..runtime.flight_recorder import DEFAULT_DEPTH
from ..workloads.registry import Workload, get_workload, resolve_workloads
from .cache import cached_compile

#: Hard ceiling on worker processes, mirroring how many shards a
#: campaign meaningfully splits into.
MAX_JOBS = 64


@dataclass(frozen=True)
class ShardTask:
    """One worker's slice of a workload campaign (picklable)."""

    workload: str
    indices: Tuple[int, ...]
    seed_prefix: str
    step_limit: int
    attack_model: str
    opt_level: int
    collect_metrics: bool = False
    forensics: bool = False
    flight_recorder_depth: int = DEFAULT_DEPTH
    timing_mode: Optional[str] = None
    #: Trace linkage for the worker's spans (two short strings — the
    #: only tracing state that crosses the pickle boundary).  None means
    #: tracing is off and the worker records no spans.
    trace_context: Optional[TraceContext] = None


@dataclass
class ShardResult:
    """One shard's outcomes plus its worker-side metrics snapshot.

    The snapshot crosses the process boundary as plain primitives; the
    parent folds it into its own registry at the merge point.
    """

    outcomes: List[AttackOutcome] = field(default_factory=list)
    metrics: Optional[Dict[str, Any]] = None
    #: Timing mode the shard's attack runs used (None = timing off).
    #: Merges refuse shards with differing modes — see
    #: :func:`merge_shard_results`.
    timing_mode: Optional[str] = None
    #: Worker-side span records (plain dicts), parented under the
    #: campaign root via the task's ``trace_context``; the parent tracer
    #: adopts them at the merge point.
    spans: List[Dict[str, Any]] = field(default_factory=list)


@dataclass(frozen=True)
class CleanTask:
    """One worker's slice of a clean-run sweep (picklable)."""

    workload: str
    sessions: Tuple[int, ...]
    seed_prefix: str
    step_limit: int
    opt_level: int


def shard_indices(count: int, shards: int) -> List[Tuple[int, ...]]:
    """Slice ``range(count)`` into at most ``shards`` contiguous blocks.

    Deterministic, order-preserving, and never emits an empty block;
    concatenating the blocks always reproduces ``range(count)``.
    """
    if count <= 0:
        return []
    shards = max(1, min(shards, count))
    base, extra = divmod(count, shards)
    blocks: List[Tuple[int, ...]] = []
    start = 0
    for shard in range(shards):
        size = base + (1 if shard < extra else 0)
        blocks.append(tuple(range(start, start + size)))
        start += size
    return blocks


def _normalize_jobs(jobs: int) -> int:
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return min(jobs, MAX_JOBS)


def _workload_name(workload: Union[Workload, str]) -> str:
    name = workload if isinstance(workload, str) else workload.name
    # Shards resolve workloads by name inside the worker; fail fast in
    # the parent if the name is not registered (ad-hoc Workload objects
    # outside the registry only support the serial path).
    get_workload(name)
    return name


def _run_shard(task: ShardTask) -> ShardResult:
    """Worker entry point: one shard of one workload's campaign."""
    workload = get_workload(task.workload)
    tracer = (
        Tracer(context=task.trace_context)
        if task.trace_context is not None
        else None
    )
    with maybe_span(
        tracer,
        "shard",
        workload=task.workload,
        attacks=len(task.indices),
        first_index=task.indices[0] if task.indices else -1,
    ):
        with maybe_span(tracer, "shard.compile", workload=task.workload):
            program = cached_compile(
                workload.source, workload.name, task.opt_level
            )
        registry = MetricsRegistry() if task.collect_metrics else None
        outcomes = [
            run_attack(
                program,
                workload,
                index,
                seed_prefix=task.seed_prefix,
                step_limit=task.step_limit,
                attack_model=task.attack_model,
                metrics=registry,
                forensics=task.forensics,
                flight_recorder_depth=task.flight_recorder_depth,
                timing_mode=task.timing_mode,
            )
            for index in task.indices
        ]
    return ShardResult(
        outcomes=outcomes,
        metrics=registry.snapshot() if registry is not None else None,
        timing_mode=task.timing_mode,
        spans=tracer.span_dicts() if tracer is not None else [],
    )


def _run_clean_shard(task: CleanTask) -> List[str]:
    """Worker entry point: monitored clean sessions; returns alarms."""
    workload = get_workload(task.workload)
    program = cached_compile(workload.source, workload.name, task.opt_level)
    alarms: List[str] = []
    for session in task.sessions:
        rng = random.Random(f"{task.seed_prefix}{workload.name}:{session}")
        inputs = workload.make_inputs(rng)
        _, ipds = monitored_run(
            program, inputs=inputs, step_limit=task.step_limit
        )
        if ipds.detected:
            alarms.append(
                f"{workload.name}[session {session}, opt {task.opt_level}]: "
                f"{ipds.alarms[0]}"
            )
    return alarms


def merge_outcomes(
    workload: Workload, attacks: int, shards: Sequence[Sequence[AttackOutcome]]
) -> WorkloadResult:
    """Merge shard outcomes back into the serial campaign's order.

    Validates completeness: the merged list must cover exactly
    ``range(attacks)`` — a shard that silently dropped work is a
    campaign-integrity failure, not a statistic.
    """
    merged = sorted(
        (outcome for shard in shards for outcome in shard),
        key=lambda outcome: outcome.index,
    )
    indices = [outcome.index for outcome in merged]
    if indices != list(range(attacks)):
        raise CampaignError(
            f"sharded campaign for {workload.name} lost outcomes: "
            f"expected {attacks} indices, merged {indices[:10]}..."
        )
    result = WorkloadResult(workload=workload.name, vuln_kind=workload.vuln_kind)
    result.attacks = merged
    return result


def merge_shard_results(
    workload: Workload, attacks: int, shards: Sequence[ShardResult]
) -> WorkloadResult:
    """Merge :class:`ShardResult` objects into one workload result.

    Beyond :func:`merge_outcomes`'s completeness check, this validates
    that every shard ran under the *same* timing mode: outcomes whose
    ``cycles`` column came from different approximations (or from a mix
    of timed and untimed shards) must never be silently averaged into
    one table.
    """
    modes = {shard.timing_mode for shard in shards}
    if len(modes) > 1:
        rendered = ", ".join(sorted(str(mode) for mode in modes))
        raise CampaignError(
            f"sharded campaign for {workload.name} mixed timing modes "
            f"across shards ({rendered}); all shards must run with the "
            f"same --timing-mode"
        )
    result = merge_outcomes(
        workload, attacks, [shard.outcomes for shard in shards]
    )
    result.timing_mode = modes.pop() if modes else None
    return result


def _serial_workload(
    workload: Workload,
    attacks: int,
    seed_prefix: str,
    step_limit: int,
    attack_model: str,
    opt_level: int,
    metrics: Optional[MetricsRegistry] = None,
    forensics: bool = False,
    flight_recorder_depth: int = DEFAULT_DEPTH,
    timing_mode: Optional[str] = None,
) -> WorkloadResult:
    program = cached_compile(workload.source, workload.name, opt_level)
    result = WorkloadResult(
        workload=workload.name,
        vuln_kind=workload.vuln_kind,
        timing_mode=timing_mode,
    )
    for index in range(attacks):
        result.attacks.append(
            run_attack(
                program,
                workload,
                index,
                seed_prefix=seed_prefix,
                step_limit=step_limit,
                attack_model=attack_model,
                metrics=metrics,
                forensics=forensics,
                flight_recorder_depth=flight_recorder_depth,
                timing_mode=timing_mode,
            )
        )
    return result


def run_workload_sharded(
    workload: Union[Workload, str],
    attacks: int = 100,
    *,
    seed_prefix: str = "",
    step_limit: int = 500_000,
    attack_model: str = "input",
    opt_level: int = 0,
    jobs: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    forensics: bool = False,
    flight_recorder_depth: int = DEFAULT_DEPTH,
    timing_mode: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> WorkloadResult:
    """One workload's campaign, sharded across ``jobs`` processes."""
    summary = run_campaign(
        workloads=[_workload_name(workload)],
        attacks=attacks,
        seed_prefix=seed_prefix,
        step_limit=step_limit,
        attack_model=attack_model,
        opt_level=opt_level,
        jobs=jobs,
        metrics=metrics,
        forensics=forensics,
        flight_recorder_depth=flight_recorder_depth,
        timing_mode=timing_mode,
        tracer=tracer,
    )
    return summary.results[0]


def run_campaign(
    workloads: Optional[Sequence[Union[Workload, str]]] = None,
    attacks: int = 100,
    *,
    seed_prefix: str = "",
    step_limit: int = 500_000,
    attack_model: str = "input",
    opt_level: int = 0,
    jobs: int = 1,
    metrics: Optional[MetricsRegistry] = None,
    forensics: bool = False,
    flight_recorder_depth: int = DEFAULT_DEPTH,
    timing_mode: Optional[str] = None,
    tracer: Optional[Tracer] = None,
) -> CampaignSummary:
    """The full campaign, sharded across a process pool.

    Identical merged outcomes (and therefore byte-identical reports) at
    any ``jobs`` value; ``jobs=1`` runs inline without a pool.

    ``metrics`` accumulates telemetry: per-workload wall-clock spans
    plus the counters every attack records.  On the sharded path the
    workers collect counters locally and return picklable snapshots
    that are folded back into the parent registry at the merge point,
    so the numbers are job-count-independent (spans, being wall-clock,
    are not — they measure the actual schedule).

    ``tracer`` (optional) records a hierarchical span tree: one
    ``campaign`` root, per-workload child spans, and — on the sharded
    path — per-shard worker spans linked back under the root via the
    :class:`TraceContext` shipped in each :class:`ShardTask`.
    """
    jobs = _normalize_jobs(jobs)
    chosen = resolve_workloads(workloads)
    if metrics is not None:
        metrics.increment("campaign.workloads", len(chosen))
        metrics.increment("campaign.jobs", jobs)
    with maybe_span(
        tracer,
        "campaign",
        workloads=len(chosen),
        attacks=attacks,
        jobs=jobs,
        attack_model=attack_model,
        opt_level=opt_level,
    ):
        if jobs == 1 or attacks <= 0 or not chosen:
            results = []
            for workload in chosen:
                with maybe_span(
                    tracer, "workload",
                    workload=workload.name, attacks=attacks,
                ):
                    if metrics is not None:
                        with metrics.span(f"workload.{workload.name}"):
                            results.append(
                                _serial_workload(
                                    workload, attacks, seed_prefix,
                                    step_limit, attack_model, opt_level,
                                    metrics, forensics,
                                    flight_recorder_depth, timing_mode,
                                )
                            )
                    else:
                        results.append(
                            _serial_workload(
                                workload, attacks, seed_prefix, step_limit,
                                attack_model, opt_level,
                                forensics=forensics,
                                flight_recorder_depth=flight_recorder_depth,
                                timing_mode=timing_mode,
                            )
                        )
            return CampaignSummary(results)

        # Warm the in-process cache before forking so fork-based workers
        # inherit compiled programs for free; spawn-based workers fall
        # back to compiling (through their own cache) once per process.
        for workload in chosen:
            cached_compile(workload.source, workload.name, opt_level)

        collect_metrics = metrics is not None
        trace_context = (
            tracer.current_context() if tracer is not None else None
        )
        futures: Dict[str, List[Future]] = {}
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            try:
                for workload in chosen:
                    futures[workload.name] = [
                        executor.submit(
                            _run_shard,
                            ShardTask(
                                workload=workload.name,
                                indices=block,
                                seed_prefix=seed_prefix,
                                step_limit=step_limit,
                                attack_model=attack_model,
                                opt_level=opt_level,
                                collect_metrics=collect_metrics,
                                forensics=forensics,
                                flight_recorder_depth=flight_recorder_depth,
                                timing_mode=timing_mode,
                                trace_context=trace_context,
                            ),
                        )
                        for block in shard_indices(attacks, jobs)
                    ]
                results = []
                for workload in chosen:
                    shard_results = [
                        future.result() for future in futures[workload.name]
                    ]
                    if metrics is not None:
                        with metrics.span(f"workload.{workload.name}.merge"):
                            merged = merge_shard_results(
                                workload, attacks, shard_results
                            )
                        metrics.increment(
                            "campaign.shards", len(shard_results)
                        )
                        for shard in shard_results:
                            metrics.merge_snapshot(shard.metrics)
                    else:
                        merged = merge_shard_results(
                            workload, attacks, shard_results
                        )
                    if tracer is not None:
                        for shard in shard_results:
                            tracer.adopt(shard.spans)
                    results.append(merged)
            except BaseException:
                # Ctrl-C (KeyboardInterrupt) and shard failures alike:
                # cancel queued shards and return immediately rather
                # than draining the pool; the CLI maps the interrupt to
                # exit 130.
                executor.shutdown(wait=False, cancel_futures=True)
                raise
        return CampaignSummary(results)


def run_clean_sweep(
    workloads: Optional[Sequence[Union[Workload, str]]] = None,
    sessions: int = 3,
    *,
    seed_prefix: str = "clean:",
    step_limit: int = 500_000,
    opt_level: int = 0,
    jobs: int = 1,
) -> int:
    """Monitored clean runs for every workload — the zero-FP sweep.

    Returns the number of clean sessions executed; raises
    :class:`CampaignError` listing every alarm if any session alarmed.
    """
    jobs = _normalize_jobs(jobs)
    chosen = resolve_workloads(workloads)
    tasks = [
        CleanTask(
            workload=workload.name,
            sessions=block,
            seed_prefix=seed_prefix,
            step_limit=step_limit,
            opt_level=opt_level,
        )
        for workload in chosen
        for block in shard_indices(sessions, jobs)
    ]
    alarms: List[str] = []
    if jobs == 1:
        for task in tasks:
            alarms.extend(_run_clean_shard(task))
    else:
        for workload in chosen:
            cached_compile(workload.source, workload.name, opt_level)
        with ProcessPoolExecutor(max_workers=jobs) as executor:
            try:
                pending = [
                    executor.submit(_run_clean_shard, task) for task in tasks
                ]
                for future in pending:
                    alarms.extend(future.result())
            except BaseException:
                executor.shutdown(wait=False, cancel_futures=True)
                raise
    if alarms:
        raise CampaignError(
            f"{len(alarms)} false positive(s) on clean runs: "
            + "; ".join(alarms[:5])
        )
    return len(chosen) * sessions
