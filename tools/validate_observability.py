#!/usr/bin/env python
"""CI validator for observability artifacts.

Checks the files a traced campaign emits, using the same validators
the library exposes:

* ``--chrome-trace PATH``  — Chrome trace-event JSON: grammar, unique
  span ids, every parent exists, exactly one root, fully connected
  (:func:`repro.observability.validate_chrome_trace`);
* ``--prometheus PATH``    — Prometheus text exposition: line grammar,
  cumulative histogram buckets, ``+Inf`` bucket equals ``_count``
  (:func:`repro.observability.validate_exposition`);
* ``--obs-json PATH``      — ``repro obs --json`` report: schema
  fields plus the attribution invariant that per-reason catch counts
  sum exactly to the detected total, campaign-wide and per workload.

Exit codes follow the audit convention: 0 clean, 1 validation errors,
2 unreadable/missing input.  At least one artifact must be given.
"""

import argparse
import json
import sys

from repro.observability import validate_chrome_trace, validate_exposition

EXIT_OK = 0
EXIT_INVALID = 1
EXIT_TOOL_ERROR = 2


def check_obs_report(document):
    """Errors in a ``repro obs`` JSON report; empty list when clean."""
    errors = []
    for field in ("version", "tool", "attacks", "detected", "by_reason",
                  "workloads"):
        if field not in document:
            errors.append(f"obs report missing field {field!r}")
    if errors:
        return errors
    if document["tool"] != "repro-obs":
        errors.append(f"unexpected tool {document['tool']!r}")
    total = sum(document["by_reason"].values())
    if total != document["detected"]:
        errors.append(
            f"by_reason sums to {total}, detected is "
            f"{document['detected']} — attribution must be exact"
        )
    for workload in document["workloads"]:
        per = sum(workload["by_reason"].values())
        if per != workload["detected"]:
            errors.append(
                f"workload {workload['workload']!r}: by_reason sums to "
                f"{per}, detected is {workload['detected']}"
            )
        if workload["detected"] > workload["attacks"]:
            errors.append(
                f"workload {workload['workload']!r}: detected "
                f"{workload['detected']} exceeds attacks "
                f"{workload['attacks']}"
            )
    return errors


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="validate_observability",
        description="Validate traced-campaign observability artifacts.",
    )
    parser.add_argument("--chrome-trace", metavar="PATH",
                        help="Chrome trace-event JSON to validate")
    parser.add_argument("--prometheus", metavar="PATH",
                        help="Prometheus text exposition to validate")
    parser.add_argument("--obs-json", metavar="PATH",
                        help="repro obs --json report to validate")
    args = parser.parse_args(argv)
    if not (args.chrome_trace or args.prometheus or args.obs_json):
        parser.error("give at least one artifact to validate")

    failures = 0

    def report(label, errors):
        nonlocal failures
        if errors:
            failures += 1
            print(f"{label}: {len(errors)} error(s)")
            for error in errors:
                print(f"  - {error}")
        else:
            print(f"{label}: ok")

    try:
        if args.chrome_trace:
            with open(args.chrome_trace, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            report(args.chrome_trace, validate_chrome_trace(document))
        if args.prometheus:
            with open(args.prometheus, "r", encoding="utf-8") as handle:
                text = handle.read()
            report(args.prometheus, validate_exposition(text))
        if args.obs_json:
            with open(args.obs_json, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            report(args.obs_json, check_obs_report(document))
    except (OSError, json.JSONDecodeError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_TOOL_ERROR
    return EXIT_INVALID if failures else EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
