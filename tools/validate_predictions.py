#!/usr/bin/env python
"""CI validator for the static detectability prover.

Runs the seeded Figure-7 campaign across the workload registry at the
requested optimization levels, joins every attack against the prover's
verdict at its exact tamper point
(:mod:`repro.staticcheck.detectvalidate`), and fails on any soundness
violation:

* a ``DET801`` (proven detected) attack the IPDS did not catch, or
* a ``DET803`` (proven undetected) attack that raised an alarm.

Also prints the static detection-rate lower bound next to the measured
detected-of-changed rate per opt level — the bound must never exceed
the measurement (that too is asserted).

Exit codes follow the audit convention: 0 sound, 1 soundness
violations, 2 tool error.  ``--json PATH`` writes the full joined
report ('-' for stdout).
"""

import argparse
import json
import sys
import time

EXIT_OK = 0
EXIT_INVALID = 1
EXIT_TOOL_ERROR = 2


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--attacks", type=int, default=30,
                        help="seeded attacks per workload (default 30, "
                             "matching the Figure-7 benchmark)")
    parser.add_argument("--opt-levels", default="0,1,2,3",
                        help="comma-separated opt levels (default 0,1,2,3)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="shard each campaign across N processes")
    parser.add_argument("--seed-prefix", default="",
                        help="campaign seed prefix (default: bench seeds)")
    parser.add_argument("--workloads", default=None,
                        help="comma-separated workload names (default: all)")
    parser.add_argument("--json", default=None, metavar="PATH",
                        help="write the joined report as JSON ('-' = stdout)")
    args = parser.parse_args(argv)

    try:
        opt_levels = tuple(
            int(level) for level in args.opt_levels.split(",") if level
        )
    except ValueError:
        print(f"error: bad --opt-levels {args.opt_levels!r}", file=sys.stderr)
        return EXIT_TOOL_ERROR

    from repro.lang.errors import ReproError
    from repro.staticcheck.detectvalidate import validate_registry

    names = args.workloads.split(",") if args.workloads else None
    started = time.perf_counter()
    try:
        report = validate_registry(
            opt_levels=opt_levels,
            attacks=args.attacks,
            seed_prefix=args.seed_prefix,
            jobs=args.jobs,
            names=names,
        )
    except (ReproError, KeyError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_TOOL_ERROR
    elapsed = time.perf_counter() - started

    failures = []
    for result in report.results:
        line = (
            f"{result.workload:<10} opt{result.opt_level}: "
            f"{result.total} attacks, {result.changed} changed, "
            f"{result.detected} detected | "
            f"DET801={result.count('DET801')} "
            f"DET802={result.count('DET802')} "
            f"DET803={result.count('DET803')} "
            f"unjoined={result.count('unjoined')} | "
            f"bound {result.predicted_lower_bound_pct:.1f}% <= "
            f"measured {result.measured_pct_detected_of_changed:.1f}%"
        )
        print(line)
        for join in result.det801_escapes:
            failures.append(
                f"{result.workload} opt{result.opt_level} attack "
                f"{join.index}: DET801 (proven detected) but the IPDS "
                f"raised no alarm ({join.target_label} = {join.value})"
            )
        for join in result.det803_alarms:
            failures.append(
                f"{result.workload} opt{result.opt_level} attack "
                f"{join.index}: DET803 (proven undetected) but the IPDS "
                f"alarmed ({join.target_label} = {join.value})"
            )
        if (
            result.predicted_lower_bound_pct
            > result.measured_pct_detected_of_changed + 1e-9
        ):
            failures.append(
                f"{result.workload} opt{result.opt_level}: static lower "
                f"bound {result.predicted_lower_bound_pct:.3f}% exceeds "
                f"measured {result.measured_pct_detected_of_changed:.3f}%"
            )

    for level in opt_levels:
        print(
            f"aggregate opt{level}: predicted lower bound "
            f"{report.avg_predicted_lower_bound_pct(level):.3f}% "
            f"(avg of per-workload bounds)"
        )
    print(
        f"{len(report.results)} campaign(s), "
        f"{sum(r.total for r in report.results)} attacks joined "
        f"in {elapsed:.1f}s"
    )

    if args.json:
        document = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json == "-":
            print(document)
        else:
            with open(args.json, "w", encoding="utf-8") as handle:
                handle.write(document + "\n")
            print(f"wrote {args.json}")

    if failures:
        for failure in failures:
            print(f"UNSOUND: {failure}", file=sys.stderr)
        return EXIT_INVALID
    print("soundness: every DET801 attack alarmed, every DET803 stayed "
          "silent")
    return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
