"""Table 1: the simulated processor configuration.

Table 1 is configuration rather than measurement; this bench renders it
from the live parameter objects and verifies every row matches the
paper, so any drift in defaults is caught here.
"""

from repro.cpu import IPDSHardwareParams, ProcessorParams
from repro.reporting import render_table1


def test_table1_renders(benchmark):
    text = benchmark(render_table1)
    print()
    print(text)
    for expected in [
        "1 GHz",
        "32 entries",
        "128",
        "64",
        "2 Level",
        "64K, 2 way, 2 cycle, 32B block",
        "512K, 4 way, 32B block, latency 10 cycles",
        "first chunk: 80 cycles, inter chunk: 5 cycles",
        "30 cycles",
        "2K bits",
        "1K bits",
        "32K bits",
    ]:
        assert expected in text, expected


def test_table1_values_match_paper(benchmark):
    p, hw = benchmark.pedantic(
        lambda: (ProcessorParams(), IPDSHardwareParams()),
        rounds=1,
        iterations=1,
    )
    assert (p.decode_width, p.issue_width, p.commit_width) == (8, 8, 8)
    assert (p.ruu_size, p.lsq_size) == (128, 64)
    assert (hw.bsv_stack_bits, hw.bcv_stack_bits, hw.bat_stack_bits) == (
        2048,
        1024,
        32768,
    )
    # Total on-chip buffer space: 35K bits (§6).
    total = hw.bsv_stack_bits + hw.bcv_stack_bits + hw.bat_stack_bits
    assert total == 35 * 1024
