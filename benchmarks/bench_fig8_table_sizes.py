"""Figure 8: average sizes (in bits) of the BSV, BCV and BAT tables.

Benchmarks the compiler side (alias → purity → Fig. 5 construction →
perfect hashing → encoding) per workload and checks the size shape the
paper reports: BAT ≫ BSV, and BSV exactly twice the BCV (2 bits vs
1 bit per hash slot).  Absolute sizes are larger than the paper's 34 /
17 / 393 because our synthetic servers concentrate their branches in
one dispatch function (see EXPERIMENTS.md).
"""

import pytest

from repro.correlation import build_program_tables, summarize_sizes
from repro.ir import lower_program
from repro.lang import parse_program
from repro.reporting import figure8_data, render_figure8
from repro.workloads import all_workloads, workload_names


@pytest.mark.parametrize("name", workload_names())
def test_fig8_table_construction(benchmark, name):
    workload = next(w for w in all_workloads() if w.name == name)
    ast = parse_program(workload.source, name)

    def construct():
        module = lower_program(ast)
        tables, _ = build_program_tables(module)
        return tables

    tables = benchmark(construct)
    summary = summarize_sizes(tables)
    assert summary.avg_bsv_bits > 0
    benchmark.extra_info["avg_bsv_bits"] = summary.avg_bsv_bits
    benchmark.extra_info["avg_bat_bits"] = summary.avg_bat_bits


def test_fig8_shape(benchmark):
    rows, average = benchmark.pedantic(figure8_data, rounds=1, iterations=1)
    print()
    print(render_figure8(rows, average))
    # BSV is 2 bits/slot, BCV 1 bit/slot: exactly 2:1.
    assert average.avg_bsv == pytest.approx(2 * average.avg_bcv)
    # The BAT dominates, by an order of magnitude (paper: 393 vs 34).
    assert average.avg_bat > 5 * average.avg_bsv
    # Every workload individually keeps the ordering BAT > BSV > BCV.
    for row in rows:
        assert row.avg_bat > row.avg_bsv > row.avg_bcv
