"""§3 extension: attack model 1 (malicious inputs) vs model 2
(malicious co-resident process).

Model 2 tampers at arbitrary execution points and arbitrary data
addresses — a strictly wider threat than overflow-reachable stack
words.  The IPDS makes no distinction (it only sees branches), so its
conditional detection rate should stay in the same band across models.
"""

import os

import pytest

from repro.attacks import run_workload_campaign

ATTACKS = int(os.environ.get("REPRO_FIG7_ATTACKS", "30"))
JOBS = int(os.environ.get("REPRO_FIG7_JOBS", "1"))
WORKLOADS = ["telnetd", "httpd", "sendmail"]

_RESULTS = {}


@pytest.mark.parametrize("model", ["input", "process"])
@pytest.mark.parametrize("name", WORKLOADS)
def test_attack_model(benchmark, compiled_workloads, name, model):
    workload, _ = compiled_workloads[name]

    def campaign():
        # Compiles resolve through the content-addressed cache (warmed
        # by the session fixture); REPRO_FIG7_JOBS>1 shards the attacks.
        return run_workload_campaign(
            workload, attacks=ATTACKS, attack_model=model, jobs=JOBS
        )

    result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    _RESULTS[(name, model)] = result
    assert result.detected <= result.changed
    benchmark.extra_info["pct_detected_of_changed"] = (
        result.pct_detected_of_changed
    )


def test_models_summary(benchmark):
    if len(_RESULTS) < 2 * len(WORKLOADS):
        pytest.skip("model benches did not run")
    results = benchmark.pedantic(
        lambda: dict(_RESULTS), rounds=1, iterations=1
    )
    print()
    print(f"{'workload':10s} {'model':8s} {'changed':>8s} {'det/chg':>8s}")
    for (name, model), result in sorted(results.items()):
        print(
            f"{name:10s} {model:8s} {result.pct_changed:7.1f}% "
            f"{result.pct_detected_of_changed:7.1f}%"
        )
    # Both models produce detections somewhere.
    for model in ("input", "process"):
        total_detected = sum(
            results[(n, model)].detected for n in WORKLOADS
        )
        assert total_detected > 0, model
