"""Figure 7: detection rate for simulated attacks.

Regenerates the paper's headline experiment: every server is attacked
``ATTACKS`` times independently; we report the share of tamperings that
change control flow and the share the IPDS detects.  Shape targets
(paper): roughly half of control-flow-changing tamperings are detected,
detection varies per benchmark, and false positives are zero by
construction (the campaign raises on any clean-run alarm).

Run with ``pytest benchmarks/bench_fig7_detection.py --benchmark-only``.
Set ``REPRO_FIG7_ATTACKS`` to change the per-benchmark attack count
(default 30 to keep the harness quick; the paper used 100 — use
``python -m repro.reporting fig7`` for the full run) and
``REPRO_FIG7_JOBS`` to shard each campaign across processes (results
are identical at any job count).

Each campaign runs with a :class:`MetricsRegistry` attached, and the
summary test writes ``BENCH_fig7_detection.json`` at the repo root:
per-workload and aggregate events/sec and steps/sec, the seed numbers
of the bench trajectory.  A second campaign sweep at ``--opt 3``
(feasible-path-sensitive tables) records its detection rates under
``detection_opt3`` — the gated proof that the extra SET entries never
weaken detection.  The summary also joins every attack against the
static detectability prover (``repro predict``) and records the
across-workload ``predicted_lower_bound`` on the detected-of-changed
rate per opt level, asserting zero soundness violations in passing.
"""

import json
import os
import time
from pathlib import Path

import pytest

from repro.attacks import CampaignSummary, run_workload_campaign
from repro.observability import MetricsRegistry
from repro.parallel import compile_cache_stats
from repro.reporting import render_figure7
from repro.staticcheck.detectvalidate import validate_workload
from repro.workloads import workload_names

ATTACKS = int(os.environ.get("REPRO_FIG7_ATTACKS", "30"))
JOBS = int(os.environ.get("REPRO_FIG7_JOBS", "1"))

BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_fig7_detection.json"

_RESULTS = {}
_METRICS = {}
_OPT3_RESULTS = {}


@pytest.mark.parametrize("name", workload_names())
def test_fig7_campaign(benchmark, compiled_workloads, name):
    workload, _ = compiled_workloads[name]
    registry = MetricsRegistry()

    def campaign():
        return run_workload_campaign(
            workload, attacks=ATTACKS, jobs=JOBS, metrics=registry
        )

    start = time.perf_counter()
    result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    elapsed = time.perf_counter() - start
    _RESULTS[name] = result
    events = registry.value("ipds.events")
    steps = registry.value("interp.steps")
    _METRICS[name] = {
        "attacks": ATTACKS,
        "jobs": JOBS,
        "seconds": round(elapsed, 6),
        "ipds_events": events,
        "interp_steps": steps,
        "events_per_sec": round(events / elapsed) if elapsed else 0,
        "steps_per_sec": round(steps / elapsed) if elapsed else 0,
        "pct_changed": round(result.pct_changed, 3),
        "pct_detected": round(result.pct_detected, 3),
    }
    # Soundness: detection only on control-flow-changing tamperings.
    assert result.detected <= result.changed <= result.total == ATTACKS
    assert registry.value("campaign.attacks") == ATTACKS
    benchmark.extra_info["pct_changed"] = result.pct_changed
    benchmark.extra_info["pct_detected"] = result.pct_detected
    benchmark.extra_info["events_per_sec"] = _METRICS[name]["events_per_sec"]
    # The campaign must reuse the fixture's build, never recompile:
    # every lookup after the ten fixture compiles is a cache hit.
    stats = compile_cache_stats()
    assert stats.hits >= 1
    assert stats.misses <= len(workload_names())
    benchmark.extra_info["compile_cache"] = (
        f"{stats.hits} hits / {stats.misses} misses"
    )


@pytest.mark.parametrize("name", workload_names())
def test_fig7_campaign_opt3(benchmark, compiled_workloads, name):
    """The same seeded campaigns against the opt-3 tables.

    Runs after the opt-0 sweep (the cache-hit assertions there count on
    exactly ten compiles having happened) and reuses each workload's
    opt-3 build through the content-addressed cache."""
    workload, _ = compiled_workloads[name]

    def campaign():
        return run_workload_campaign(
            workload, attacks=ATTACKS, jobs=JOBS, opt_level=3
        )

    result = benchmark.pedantic(campaign, rounds=1, iterations=1)
    _OPT3_RESULTS[name] = result
    assert result.detected <= result.changed <= result.total == ATTACKS
    # The feasible-path entries only *add* predictions: the opt-3
    # tables must never detect less than the baseline tables did.
    if name in _RESULTS:
        assert result.detected >= _RESULTS[name].detected, name
        assert result.changed == _RESULTS[name].changed, name
    benchmark.extra_info["pct_changed"] = result.pct_changed
    benchmark.extra_info["pct_detected"] = result.pct_detected


def test_fig7_summary_shape(benchmark, compiled_workloads):
    """Aggregate shape assertions + the rendered figure."""

    def summarize():
        for name in workload_names():
            if name not in _RESULTS:
                workload, program = compiled_workloads[name]
                _RESULTS[name] = run_workload_campaign(
                    workload, attacks=ATTACKS, program=program
                )
        return CampaignSummary([_RESULTS[n] for n in workload_names()])

    summary = benchmark.pedantic(summarize, rounds=1, iterations=1)
    for name in workload_names():
        if name not in _OPT3_RESULTS:
            workload, _ = compiled_workloads[name]
            _OPT3_RESULTS[name] = run_workload_campaign(
                workload, attacks=ATTACKS, opt_level=3
            )
    opt3_summary = CampaignSummary(
        [_OPT3_RESULTS[n] for n in workload_names()]
    )
    # Static lower bound: join the campaigns just run (same outcomes,
    # no re-execution) against the detectability prover at each exact
    # tamper point.  The prover's claims are hard — a DET801 attack
    # that escaped or a DET803 attack that alarmed is a soundness bug,
    # and the bound can never exceed the measured rate.
    predicted_lower_bound = {}
    for opt_level, results in ((0, _RESULTS), (3, _OPT3_RESULTS)):
        rows = []
        for name in workload_names():
            workload, _ = compiled_workloads[name]
            rows.append(
                validate_workload(
                    workload, opt_level=opt_level, result=results[name]
                )
            )
        for row in rows:
            assert not row.violations, (row.workload, opt_level)
            assert (
                row.predicted_lower_bound_pct
                <= row.measured_pct_detected_of_changed + 1e-9
            ), (row.workload, opt_level)
        predicted_lower_bound[f"opt{opt_level}"] = round(
            sum(r.predicted_lower_bound_pct for r in rows) / len(rows), 3
        )
    # Richer opt-3 tables can only prove more attacks detected.
    assert (
        predicted_lower_bound["opt3"] >= predicted_lower_bound["opt0"]
    ), predicted_lower_bound
    print()
    print(render_figure7(summary))
    if _METRICS:
        total_events = sum(m["ipds_events"] for m in _METRICS.values())
        total_steps = sum(m["interp_steps"] for m in _METRICS.values())
        total_seconds = sum(m["seconds"] for m in _METRICS.values())
        BENCH_OUT.write_text(
            json.dumps(
                {
                    "bench": "fig7_detection",
                    "attacks_per_workload": ATTACKS,
                    "jobs": JOBS,
                    "detection": {
                        "avg_pct_changed": round(summary.avg_pct_changed, 3),
                        "avg_pct_detected": round(summary.avg_pct_detected, 3),
                        "avg_pct_detected_of_changed": round(
                            summary.avg_pct_detected_of_changed, 3
                        ),
                    },
                    "detection_opt3": {
                        "avg_pct_changed": round(
                            opt3_summary.avg_pct_changed, 3
                        ),
                        "avg_pct_detected": round(
                            opt3_summary.avg_pct_detected, 3
                        ),
                        "avg_pct_detected_of_changed": round(
                            opt3_summary.avg_pct_detected_of_changed, 3
                        ),
                    },
                    "predicted_lower_bound": predicted_lower_bound,
                    "workloads": _METRICS,
                    "total": {
                        "seconds": round(total_seconds, 6),
                        "ipds_events": total_events,
                        "interp_steps": total_steps,
                        "events_per_sec": (
                            round(total_events / total_seconds)
                            if total_seconds else 0
                        ),
                        "steps_per_sec": (
                            round(total_steps / total_seconds)
                            if total_seconds else 0
                        ),
                    },
                },
                indent=2,
                sort_keys=True,
            )
            + "\n"
        )
        print(f"wrote {BENCH_OUT}")
    # Shape: a nontrivial fraction of tamperings change control flow,
    # and the IPDS catches a sizable share of those.
    assert summary.avg_pct_changed > 5.0
    assert summary.avg_pct_detected > 0.0
    assert summary.avg_pct_detected_of_changed > 20.0
    # Some detections must exist in several benchmarks, not just one.
    detecting = [r for r in summary.results if r.detected > 0]
    assert len(detecting) >= 4
    # The opt-3 tables strictly add predictions over the same seeded
    # attacks: the detection rate must not drop below the baseline.
    assert opt3_summary.avg_pct_changed == summary.avg_pct_changed
    assert (
        opt3_summary.avg_pct_detected_of_changed
        >= summary.avg_pct_detected_of_changed
    )
