"""Serial vs. sharded campaign throughput (the parallel engine).

Runs the full-registry Figure-7 campaign once serially and once with
``REPRO_PAR_JOBS`` worker processes, asserts the merged outcomes are
identical (the engine's core guarantee), and reports the speedup.  The
speedup assertion only arms on multi-core hosts — on a single core the
sharded run can't beat serial, but the equality check still must hold.

Knobs: ``REPRO_PAR_ATTACKS`` (default 20 attacks/workload),
``REPRO_PAR_JOBS`` (default 4).
"""

import os
import time

from repro.attacks import run_campaign
from repro.parallel import compile_cache_stats

ATTACKS = int(os.environ.get("REPRO_PAR_ATTACKS", "20"))
JOBS = int(os.environ.get("REPRO_PAR_JOBS", "4"))


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_parallel_campaign_speedup(benchmark):
    t0 = time.perf_counter()
    serial = run_campaign(attacks=ATTACKS, seed_prefix="par:", jobs=1)
    serial_secs = time.perf_counter() - t0

    t0 = time.perf_counter()
    sharded = benchmark.pedantic(
        lambda: run_campaign(attacks=ATTACKS, seed_prefix="par:", jobs=JOBS),
        rounds=1,
        iterations=1,
    )
    sharded_secs = time.perf_counter() - t0

    # Identity first: sharding must never change a single outcome.
    assert [r.workload for r in serial.results] == [
        r.workload for r in sharded.results
    ]
    for left, right in zip(serial.results, sharded.results):
        assert left.attacks == right.attacks, left.workload

    stats = compile_cache_stats()
    speedup = serial_secs / sharded_secs if sharded_secs else float("inf")
    benchmark.extra_info["serial_secs"] = round(serial_secs, 3)
    benchmark.extra_info["sharded_secs"] = round(sharded_secs, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["cores"] = _cores()
    benchmark.extra_info["compile_cache"] = (
        f"{stats.hits} hits / {stats.misses} misses"
    )
    print(
        f"\nserial {serial_secs:.2f}s vs jobs={JOBS} {sharded_secs:.2f}s "
        f"-> speedup {speedup:.2f}x on {_cores()} core(s)"
    )
    # Each workload compiles at most once per process in the parent;
    # attacks after the first are cache hits.
    assert stats.misses <= 2 * len(serial.results)
    if _cores() >= 2 and JOBS >= 2:
        assert speedup > 1.1, (
            f"sharded campaign not faster: {serial_secs:.2f}s serial vs "
            f"{sharded_secs:.2f}s with jobs={JOBS}"
        )
