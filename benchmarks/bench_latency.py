"""§6 detection latency: branch sent to IPDS → verdict (paper: 11.7 cy).

Measures the mean check latency of the IPDS hardware model across the
workload traces; the paper's claim is that with a >20-stage pipeline a
checking request issued at decode returns before retirement, i.e. the
latency stays in the low tens of cycles.
"""

import os

import pytest

from repro.cpu import timed_run
from repro.workloads import workload_names

SCALE = int(os.environ.get("REPRO_FIG9_SCALE", "10"))

_LATENCIES = {}


@pytest.mark.parametrize("name", workload_names())
def test_detection_latency(benchmark, compiled_workloads, workload_inputs, name):
    _, program = compiled_workloads[name]
    inputs = workload_inputs(name, scale=SCALE)

    def run():
        return timed_run(program, inputs, with_ipds=True)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    latency = result.ipds_stats.avg_check_latency
    _LATENCIES[name] = latency
    assert result.ipds_stats.checks > 0, name
    # Same order as the paper's 11.7 cycles.
    assert 1.0 <= latency <= 40.0, (name, latency)
    benchmark.extra_info["avg_check_latency"] = latency


def test_latency_average(benchmark):
    if not _LATENCIES:
        pytest.skip("per-workload latency benches did not run")
    avg = benchmark.pedantic(
        lambda: sum(_LATENCIES.values()) / len(_LATENCIES),
        rounds=1,
        iterations=1,
    )
    print(f"\naverage detection latency: {avg:.1f} cycles (paper: 11.7)")
    assert 1.0 <= avg <= 30.0
