"""Figure 9: normalized performance of IPDS vs. an unprotected baseline.

Runs each workload's trace through the Table 1 timing model twice
(baseline / IPDS) and reports the performance ratio.  Shape targets
(paper): average degradation well under a few percent (theirs: 0.79%),
with most benchmarks negligible.
"""

import os

import pytest

from repro.cpu import normalized_performance
from repro.reporting import render_figure9
from repro.workloads import workload_names

SCALE = int(os.environ.get("REPRO_FIG9_SCALE", "10"))

_RESULTS = {}


@pytest.mark.parametrize("name", workload_names())
def test_fig9_timed_run(benchmark, compiled_workloads, workload_inputs, name):
    _, program = compiled_workloads[name]
    inputs = workload_inputs(name, scale=SCALE)

    def compare():
        return normalized_performance(program, inputs, name)

    comparison = benchmark.pedantic(compare, rounds=1, iterations=1)
    _RESULTS[name] = comparison
    assert comparison.baseline_cycles <= comparison.ipds_cycles
    benchmark.extra_info["degradation_pct"] = comparison.degradation_pct


def test_fig9_summary_shape(benchmark, compiled_workloads, workload_inputs):
    def summarize():
        for name in workload_names():
            if name not in _RESULTS:
                _, program = compiled_workloads[name]
                _RESULTS[name] = normalized_performance(
                    program, workload_inputs(name, scale=SCALE), name
                )
        return [_RESULTS[n] for n in workload_names()]

    comparisons = benchmark.pedantic(summarize, rounds=1, iterations=1)
    print()
    print(render_figure9(comparisons))
    avg_deg = sum(c.degradation_pct for c in comparisons) / len(comparisons)
    # Paper: 0.79% average; ours must stay in the "negligible" regime.
    assert avg_deg < 3.0
    # Most benchmarks individually under 2%.
    small = [c for c in comparisons if c.degradation_pct < 2.0]
    assert len(small) >= 7
