"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's artifacts; compiled
programs are cached per session so timing numbers measure the
experiment, not recompilation.
"""

import random

import pytest

from repro.pipeline import compile_program_cached
from repro.workloads import all_workloads


@pytest.fixture(scope="session")
def compiled_workloads():
    """{name: (Workload, ProtectedProgram)} for all ten servers.

    Compiled through the content-addressed cache, so every benchmark
    module in the session (and any sharded campaign worker forked from
    it) reuses the same build instead of recompiling.
    """
    return {
        w.name: (w, compile_program_cached(w.source, w.name))
        for w in all_workloads()
    }


@pytest.fixture(scope="session")
def workload_inputs():
    """Deterministic medium-length input sessions for timing runs."""

    def make(name, scale=10):
        workload = next(w for w in all_workloads() if w.name == name)
        return workload.make_inputs(random.Random(f"bench:{name}"), scale)

    return make
