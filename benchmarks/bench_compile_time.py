"""§6: "the compilation time for all benchmarks is up to a few seconds".

Times the full compiler path (parse → lower → verify → alias → purity →
Fig. 5 construction → hashing) per workload and for the whole set, at
opt 0, at opt 2 (which adds the summary-based interprocedural analysis)
and at opt 3 (which adds the per-edge feasible-path MFP), and writes
``BENCH_compile_time.json`` at the repo root.
The regression gate (``repro bench-diff``) compares the whole-set
numbers against ``benchmarks/baselines/BENCH_compile_time.json`` so an
accidentally quadratic pass shows up in CI, not in user reports.
"""

import json
from pathlib import Path

import pytest

from repro.pipeline import compile_program
from repro.workloads import all_workloads, workload_names

BENCH_OUT = Path(__file__).resolve().parent.parent / "BENCH_compile_time.json"

_PER_WORKLOAD = {}


@pytest.mark.parametrize("name", workload_names())
def test_compile_time_per_workload(benchmark, name):
    workload = next(w for w in all_workloads() if w.name == name)
    program = benchmark(compile_program, workload.source, name)
    assert program.tables.total_branches > 0
    if benchmark.stats is not None:  # absent under --benchmark-disable
        _PER_WORKLOAD[name] = round(benchmark.stats.stats.min, 6)


@pytest.mark.parametrize("opt_level", [0, 2, 3], ids=["opt0", "opt2", "opt3"])
def test_compile_all_benchmarks_within_seconds(benchmark, opt_level):
    def compile_all():
        return [
            compile_program(w.source, w.name, opt_level).tables.total_checked
            for w in all_workloads()
        ]

    checked = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    assert sum(checked) > 0
    if benchmark.stats is None:  # --benchmark-disable: nothing to record
        return
    # The paper's bound, generously interpreted for Python: the whole
    # ten-benchmark set compiles in seconds, not minutes — even with
    # the opt-2 summary fixpoint and the opt-3 per-edge feasible-path
    # propagation on top.
    assert benchmark.stats.stats.max < 30.0
    _PER_WORKLOAD[f"__all_opt{opt_level}"] = benchmark.stats.stats.max
    if opt_level == 3:
        _write_report()


def _write_report():
    opt0 = _PER_WORKLOAD.pop("__all_opt0", None)
    opt2 = _PER_WORKLOAD.pop("__all_opt2", None)
    opt3 = _PER_WORKLOAD.pop("__all_opt3", None)
    totals = {"opt3_seconds": round(opt3, 6)}
    if opt2 is not None:  # absent under -k filtering
        totals["opt2_seconds"] = round(opt2, 6)
        totals["feasible_overhead_pct"] = (
            round(100.0 * (opt3 / opt2 - 1.0), 2) if opt2 else 0.0
        )
    if opt0 is not None and opt2 is not None:
        totals["opt0_seconds"] = round(opt0, 6)
        totals["interproc_overhead_pct"] = (
            round(100.0 * (opt2 / opt0 - 1.0), 2) if opt0 else 0.0
        )
    BENCH_OUT.write_text(
        json.dumps(
            {
                "bench": "compile_time",
                "workloads": dict(sorted(_PER_WORKLOAD.items())),
                "total": totals,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"\nwrote {BENCH_OUT}")
