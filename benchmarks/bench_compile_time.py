"""§6: "the compilation time for all benchmarks is up to a few seconds".

Times the full compiler path (parse → lower → verify → alias → purity →
Fig. 5 construction → hashing) per workload and for the whole set.
"""

import pytest

from repro.pipeline import compile_program
from repro.workloads import all_workloads, workload_names


@pytest.mark.parametrize("name", workload_names())
def test_compile_time_per_workload(benchmark, name):
    workload = next(w for w in all_workloads() if w.name == name)
    program = benchmark(compile_program, workload.source, name)
    assert program.tables.total_branches > 0


def test_compile_all_benchmarks_within_seconds(benchmark):
    def compile_all():
        return [
            compile_program(w.source, w.name).tables.total_checked
            for w in all_workloads()
        ]

    checked = benchmark.pedantic(compile_all, rounds=1, iterations=1)
    assert sum(checked) > 0
    # The paper's bound, generously interpreted for Python: the whole
    # ten-benchmark set compiles in seconds, not minutes.
    assert benchmark.stats.stats.max < 30.0
