"""Observer-bus dispatch overhead.

Measures what attaching observers costs one interpreter execution:

* ``bare``        — no observers at all (the bus short-circuits);
* ``noop_events`` — one control-flow-only no-op observer (call /
  return / branch dispatch, no per-instruction hook);
* ``noop_instr``  — a no-op observer that also subscribes to the
  per-instruction stream (the expensive hot path);
* ``ipds_only`` / ``timing_only`` / ``syscall_only`` /
  ``recorder_only`` — each real consumer attached alone, so the cost
  of the full stack can be attributed per consumer;
* ``full_stack``  — the real four-consumer configuration: IPDS +
  baseline timing model + n-gram syscall capture + trace recorder on
  one pass;
* ``full_stack_segment`` — the same stack with the timing model in
  segment mode (``--timing-mode=segment``), including per-run segment
  training: the campaign-speed configuration;
* ``full_stack_traced`` — the full stack plus the opt-in tracing /
  histogram instrumentation a traced session adds at run boundaries
  (one hierarchical span, two histogram observations per run), so the
  bench-diff gate pins both that tracing-off stays free and that
  tracing-on overhead stays bounded.

Run with ``pytest benchmarks/bench_observer_overhead.py --benchmark-only``.
Writes ``BENCH_observer_overhead.json`` at the repo root with per-config
steps/sec, the overhead of each config relative to ``bare`` — the
number the bus's pre-filtering (control-flow-only observers never pay
per-instruction dispatch) is meant to keep small — a ``breakdown``
section attributing the full stack's cost to individual consumers
(shares can exceed 100% of ``full_stack``: a lone consumer pays the
whole dispatch fan-out cost that the stack amortizes), and a
``summary`` block with the headline full-stack throughput numbers the
bench-diff gate watches direction-aware.
"""

import json
import time
from pathlib import Path

import pytest

from repro.baselines.compare import SyscallTraceObserver
from repro.cpu.params import ProcessorParams
from repro.cpu.pipeline import TimingModel
from repro.cpu.simulator import TimingObserver
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import Tracer
from repro.pipeline import observed_run
from repro.runtime.observer import ExecutionObserver
from repro.runtime.replay import TraceRecorder

WORKLOAD = "telnetd"
SCALE = 12
ROUNDS = 7
CONSUMER_CONFIGS = [
    "ipds_only", "timing_only", "syscall_only", "recorder_only",
]
CONFIGS = (
    ["bare", "noop_events", "noop_instr"]
    + CONSUMER_CONFIGS
    + ["full_stack", "full_stack_segment", "full_stack_traced"]
)

BENCH_OUT = (
    Path(__file__).resolve().parent.parent / "BENCH_observer_overhead.json"
)

_TIMINGS = {}


class _NoopInstructionObserver(ExecutionObserver):
    """Subscribes to every instruction, does nothing with it."""

    def on_instruction(self, instruction, touched):
        pass


def _observers(config):
    if config == "bare":
        return []
    if config == "noop_events":
        return [ExecutionObserver()]
    if config == "noop_instr":
        return [_NoopInstructionObserver()]
    if config == "ipds_only":
        return [None]  # placeholder: fresh IPDS built per run
    if config == "timing_only":
        return [TimingObserver(TimingModel(ProcessorParams(), None))]
    if config == "syscall_only":
        return [SyscallTraceObserver()]
    if config == "recorder_only":
        return [TraceRecorder()]
    if config == "full_stack":
        return [
            None,  # placeholder: fresh IPDS built per run
            TimingObserver(TimingModel(ProcessorParams(), None)),
            SyscallTraceObserver(),
            TraceRecorder(),
        ]
    if config == "full_stack_segment":
        # A fresh model per run: the measured cost honestly includes
        # segment training, not just trained-replay throughput.
        return [
            None,  # placeholder: fresh IPDS built per run
            TimingObserver(
                TimingModel(ProcessorParams(), None, mode="segment")
            ),
            SyscallTraceObserver(),
            TraceRecorder(),
        ]
    if config == "full_stack_traced":
        # The exact full_stack observer set; the tracing cost is added
        # around the run in the benchmark body, where a traced session
        # adds it (span + wall/throughput histogram observations).
        return [
            None,  # placeholder: fresh IPDS built per run
            TimingObserver(TimingModel(ProcessorParams(), None)),
            SyscallTraceObserver(),
            TraceRecorder(),
        ]
    raise ValueError(config)


@pytest.mark.parametrize("config", CONFIGS)
def test_observer_overhead(benchmark, compiled_workloads, workload_inputs,
                           config):
    workload, program = compiled_workloads[WORKLOAD]
    inputs = workload_inputs(WORKLOAD, SCALE)

    # Long-lived across rounds like a campaign's tracer/registry: the
    # per-run cost measured is span recording + histogram observation,
    # not object construction.
    tracer = Tracer() if config == "full_stack_traced" else None
    registry = MetricsRegistry() if config == "full_stack_traced" else None

    def execute():
        observers = _observers(config)
        if config in (
            "full_stack", "full_stack_segment", "full_stack_traced",
            "ipds_only",
        ):
            observers[0] = program.new_ipds()
        if tracer is None:
            return observed_run(program, observers=observers, inputs=inputs)
        started = time.perf_counter()
        with tracer.span("run", workload=WORKLOAD, scale=SCALE):
            result = observed_run(
                program, observers=observers, inputs=inputs
            )
        elapsed = time.perf_counter() - started
        registry.observe_histogram("run.wall_seconds", elapsed)
        if elapsed > 0:
            registry.observe_histogram(
                "run.steps_per_sec", result.steps / elapsed
            )
        return result

    # Warm outside the timed region (allocator, caches, CPU frequency).
    reference = execute()
    result = benchmark.pedantic(
        execute, rounds=ROUNDS, iterations=1, warmup_rounds=2
    )
    assert result.steps == reference.steps
    # The harness's own best-of-rounds measurement, not wall clock
    # around it — minimum is the standard low-noise micro number.
    best = benchmark.stats.stats.min
    _TIMINGS[config] = {
        "seconds_per_run": round(best, 6),
        "steps": result.steps,
        "steps_per_sec": round(result.steps / best) if best else 0,
    }
    benchmark.extra_info["steps_per_sec"] = _TIMINGS[config]["steps_per_sec"]
    if config == CONFIGS[-1]:
        _write_report()


def _write_report():
    assert set(CONFIGS) <= set(_TIMINGS), "all overhead cases must run"
    bare = _TIMINGS["bare"]["seconds_per_run"]
    for timing in _TIMINGS.values():
        timing["overhead_vs_bare_pct"] = (
            round(100.0 * (timing["seconds_per_run"] / bare - 1.0), 2)
            if bare else 0.0
        )
    # Attribute the full stack's cost to individual consumers: each
    # consumer's lone marginal cost over bare, as absolute seconds and
    # as a share of the full-stack marginal cost.
    full_cost = _TIMINGS["full_stack"]["seconds_per_run"] - bare
    breakdown = {}
    for config in CONSUMER_CONFIGS:
        lone_cost = _TIMINGS[config]["seconds_per_run"] - bare
        breakdown[config] = {
            "marginal_seconds_per_run": round(lone_cost, 6),
            "share_of_full_stack_pct": (
                round(100.0 * lone_cost / full_cost, 2) if full_cost else 0.0
            ),
        }
    # Headline block for the direction-aware bench-diff rules: the
    # full-stack throughput (higher is better) and overhead vs bare
    # (lower is better), exact and segment mode side by side.
    full = _TIMINGS["full_stack"]
    segment = _TIMINGS["full_stack_segment"]
    traced = _TIMINGS["full_stack_traced"]
    summary = {
        "full_stack_steps_per_sec": full["steps_per_sec"],
        "full_stack_overhead_vs_bare_pct": full["overhead_vs_bare_pct"],
        "full_stack_segment_steps_per_sec": segment["steps_per_sec"],
        "full_stack_segment_overhead_vs_bare_pct": segment[
            "overhead_vs_bare_pct"
        ],
        "segment_speedup_x_full_stack": (
            round(
                full["seconds_per_run"] / segment["seconds_per_run"], 3
            )
            if segment["seconds_per_run"]
            else 0.0
        ),
        "full_stack_traced_steps_per_sec": traced["steps_per_sec"],
        "tracing_overhead_vs_full_stack_pct": (
            round(
                100.0
                * (traced["seconds_per_run"] / full["seconds_per_run"] - 1.0),
                2,
            )
            if full["seconds_per_run"]
            else 0.0
        ),
    }
    BENCH_OUT.write_text(
        json.dumps(
            {
                "bench": "observer_overhead",
                "workload": WORKLOAD,
                "scale": SCALE,
                "rounds": ROUNDS,
                "configs": _TIMINGS,
                "breakdown": breakdown,
                "summary": summary,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    print(f"\nwrote {BENCH_OUT}")
