"""§5.2 ablation: the collision-free hash search.

The paper's claim: "the compiler can find a proper combination of hash
function and hash space quickly" for realistic per-function branch
counts.  This bench measures search cost and resulting hash-space
inflation across function sizes, plus the real workloads.
"""

import random

import pytest

from repro.correlation import find_perfect_hash, minimum_bits
from repro.ir import CODE_BASE, INSTRUCTION_BYTES
from repro.workloads import workload_names


def synthetic_pcs(count, rng):
    """Branch PCs scattered through a function like real code."""
    pcs = set()
    cursor = CODE_BASE
    while len(pcs) < count:
        cursor += INSTRUCTION_BYTES * rng.randint(1, 12)
        pcs.add(cursor)
    return sorted(pcs)


@pytest.mark.parametrize("count", [1, 4, 16, 64, 256])
def test_hash_search_speed(benchmark, count):
    rng = random.Random(f"hash:{count}")
    pcs = synthetic_pcs(count, rng)
    result = benchmark(find_perfect_hash, pcs)
    assert result.collision_free
    # Verify no collisions for real.
    slots = {result.params.slot(pc) for pc in pcs}
    assert len(slots) == count
    benchmark.extra_info["trials"] = result.trials
    benchmark.extra_info["space"] = result.params.space


@pytest.mark.parametrize("count", [4, 16, 64])
def test_hash_space_inflation_is_bounded(benchmark, count):
    """The found space should stay within a few doublings of minimal."""

    def sweep():
        inflations = []
        for seed in range(20):
            pcs = synthetic_pcs(count, random.Random(f"infl:{count}:{seed}"))
            result = find_perfect_hash(pcs)
            inflations.append(
                result.params.space / (1 << minimum_bits(count))
            )
        return inflations

    inflations = benchmark(sweep)
    # A two-parameter shift/XOR family needs roughly birthday-bound
    # headroom: within a few doublings of minimal, never unbounded.
    assert max(inflations) <= 8.0
    assert sum(inflations) / len(inflations) <= 8.0


def test_hash_search_on_real_workloads(benchmark, compiled_workloads):
    def search_all():
        trials = 0
        for name in workload_names():
            _, program = compiled_workloads[name]
            for tables in program.tables:
                if tables.branch_pcs:
                    trials += find_perfect_hash(tables.branch_pcs).trials
        return trials

    trials = benchmark(search_all)
    # "in most cases, the compiler can find a proper combination
    #  ... quickly" — bounded total search effort.
    assert trials < 5000
