"""§5.4 ablation: context-switch cost, eager vs. lazy table swapping.

The paper: "we can swap the top of BSV and BAT stacks (around 1K bits)
first and let the new process start.  Lower layers of stacks are
context switched in parallel with the execution of the new process to
reduce context switch latency."  This ablation quantifies that: with
frequent context switches, the lazy scheme's program-visible stall is
a fraction of the eager scheme's.
"""

import pytest

from repro.cpu import IPDSHardwareParams, timed_run

INTERVAL = 5_000  # aggressive switching to make the effect visible

_RESULTS = {}


@pytest.mark.parametrize("mode", ["eager", "lazy"])
def test_context_switch_mode(benchmark, compiled_workloads, workload_inputs, mode):
    _, program = compiled_workloads["crond"]
    inputs = workload_inputs("crond", scale=10)
    params = IPDSHardwareParams(
        context_switch_interval=INTERVAL,
        lazy_context_switch=(mode == "lazy"),
    )

    def run():
        return timed_run(program, inputs, ipds_params=params)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[mode] = result
    assert result.ipds_stats.context_switches > 0
    benchmark.extra_info["switch_stall_cycles"] = (
        result.ipds_stats.context_switch_stall_cycles
    )


def test_lazy_switching_beats_eager(benchmark):
    if len(_RESULTS) < 2:
        pytest.skip("mode benches did not run")
    eager, lazy = benchmark.pedantic(
        lambda: (_RESULTS["eager"], _RESULTS["lazy"]), rounds=1, iterations=1
    )
    print()
    for mode, result in (("eager", eager), ("lazy", lazy)):
        stats = result.ipds_stats
        print(
            f"  {mode:5s}: {stats.context_switches} switches, "
            f"{stats.context_switch_stall_cycles} stall cycles, "
            f"{result.cycles} total cycles"
        )
    # Same switch count; the lazy scheme stalls the program less.
    assert (
        lazy.ipds_stats.context_switches == eager.ipds_stats.context_switches
    )
    assert (
        lazy.ipds_stats.context_switch_stall_cycles
        <= eager.ipds_stats.context_switch_stall_cycles
    )
    assert lazy.cycles <= eager.cycles
