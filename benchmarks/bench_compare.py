#!/usr/bin/env python
"""Compare freshly produced BENCH_*.json files against the committed
baselines in ``benchmarks/baselines/``.

Thin wrapper over :mod:`repro.observability.benchdiff` (also exposed as
``repro bench-diff``) so CI can call it as a script::

    PYTHONPATH=src python benchmarks/bench_compare.py \
        --baseline benchmarks/baselines --current . \
        --require observer_overhead

Exit codes follow the audit convention: 0 clean, 1 regression, 2 tool
error (missing required bench file or metric).
"""

import sys

from repro.observability.benchdiff import main

if __name__ == "__main__":
    sys.exit(main())
