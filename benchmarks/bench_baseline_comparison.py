"""Related-work comparison: IPDS vs. syscall-granularity n-gram FSA.

The paper's introduction argues that (a) coarse-granularity anomaly
detectors miss attacks and (b) making them finer-grained "could lead to
a high false positive rate", while IPDS is both fine-grained and
zero-FP by construction.  This bench makes that quantitative: a
call-site-aware n-gram detector (the strong end of the FSA family,
[10]) is trained on clean sessions and evaluated against the same
attack recipe as Figure 7.
"""

import os

import pytest

from repro.baselines import compare_detectors

ATTACKS = int(os.environ.get("REPRO_BASELINE_ATTACKS", "25"))
WORKLOADS = ["telnetd", "httpd", "sendmail", "sshd"]

_RESULTS = {}


@pytest.mark.parametrize("name", WORKLOADS)
def test_baseline_comparison(benchmark, compiled_workloads, name):
    workload, program = compiled_workloads[name]

    def run():
        return compare_detectors(
            workload,
            attacks=ATTACKS,
            train_sessions=30,
            test_sessions=30,
            program=program,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    _RESULTS[name] = result
    benchmark.extra_info["ngram_fp_rate"] = result.ngram_fp_rate
    benchmark.extra_info["ipds_det"] = result.ipds_detection_of_changed
    benchmark.extra_info["ngram_det"] = result.ngram_detection_of_changed


def test_baseline_summary(benchmark):
    if len(_RESULTS) < len(WORKLOADS):
        pytest.skip("per-workload comparisons did not run")
    results = benchmark.pedantic(
        lambda: [_RESULTS[n] for n in WORKLOADS], rounds=1, iterations=1
    )
    print()
    print(
        f"{'workload':10s} {'ngram FP':>9s} {'ngram det/chg':>14s} "
        f"{'IPDS FP':>8s} {'IPDS det/chg':>13s}"
    )
    for r in results:
        print(
            f"{r.workload:10s} {r.ngram_fp_rate:8.1f}% "
            f"{r.ngram_detection_of_changed:13.1f}% "
            f"{'0.0%':>8s} {r.ipds_detection_of_changed:12.1f}%"
        )
    # The structural claim: IPDS has zero false positives (asserted
    # inside compare_detectors); the trained baseline pays for its
    # detection with a nonzero FP rate on at least one server.
    assert any(r.ngram_false_positives > 0 for r in results)
    # And the baseline is a real detector, not a strawman: it catches
    # a nontrivial share of control-flow-changing attacks somewhere.
    assert any(r.ngram_detection_of_changed > 20.0 for r in results)
