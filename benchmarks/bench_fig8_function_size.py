"""Figure 8 fidelity ablation: table sizes vs. function-size mix.

Our synthetic servers concentrate branches in one dispatch function,
which inflates the per-function averages relative to the paper (34 /
17 / 393 bits).  This ablation rebuilds the experiment over a program
whose function-size distribution matches real C servers — many small
functions with a handful of branches each — and shows the averages
landing in the paper's range, confirming the encoding itself is
faithful and the Figure 8 gap is a workload-shape artifact.
"""

import random

import pytest

from repro.correlation import build_program_tables, summarize_sizes
from repro.ir import lower_program
from repro.lang import parse_program


def realistic_program(functions=40, seed="fig8"):
    """A program of many modest functions, like a real server's long
    tail of helpers: a processing loop with several correlated checks
    of slow-moving state (the structure branch correlation feeds on),
    averaging ~4–12 branches per function."""
    rng = random.Random(seed)
    parts = ["int s0;", "int s1;", "int s2;"]
    names = []
    for index in range(functions):
        name = f"fn{index}"
        names.append(name)
        checks = rng.randint(2, 8)
        var = rng.choice(["s0", "s1", "s2"])
        base_bound = rng.randint(0, 10)
        body = ["int v = read_int();", "while (read_int()) {"]
        for b in range(checks):
            # Nested bounds on the same variable: subsumption chains.
            bound = base_bound + b * rng.randint(1, 3)
            op = rng.choice(["<", "<=", ">="])
            body.append(
                f"if ({var} {op} {bound}) {{ emit({index * 10 + b}); }}"
            )
        if rng.random() < 0.3:
            body.append(f"{var} = v + {rng.randint(0, 3)};")
        body.append("}")
        parts.append(f"int {name}() {{ " + " ".join(body) + " return v; }")
    calls = " ".join(f"{name}();" for name in names)
    parts.append(f"void main() {{ {calls} }}")
    return "\n".join(parts)


def test_fig8_with_realistic_function_mix(benchmark):
    source = realistic_program()

    def build():
        module = lower_program(parse_program(source))
        tables, _ = build_program_tables(module)
        return summarize_sizes(tables)

    summary = benchmark(build)
    print(
        f"\nmany-small-functions averages: BSV {summary.avg_bsv_bits:.1f}b, "
        f"BCV {summary.avg_bcv_bits:.1f}b, BAT {summary.avg_bat_bits:.1f}b "
        f"(paper: 34 / 17 / 393)"
    )
    # With the paper-like function-size mix, the absolute averages land
    # in the paper's range.
    assert 8 <= summary.avg_bsv_bits <= 80
    assert summary.avg_bsv_bits == pytest.approx(2 * summary.avg_bcv_bits)
    assert 50 <= summary.avg_bat_bits <= 1200
    assert summary.avg_bat_bits > summary.avg_bsv_bits


@pytest.mark.parametrize("functions", [10, 40, 120])
def test_fig8_scales_with_function_count(benchmark, functions):
    source = realistic_program(functions=functions, seed=f"scale{functions}")

    def build():
        module = lower_program(parse_program(source))
        tables, _ = build_program_tables(module)
        return summarize_sizes(tables)

    summary = benchmark.pedantic(build, rounds=1, iterations=1)
    assert len(summary.per_function) == functions + 1  # + main
    benchmark.extra_info["avg_bsv_bits"] = summary.avg_bsv_bits
