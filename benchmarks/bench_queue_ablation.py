"""§5.4 ablation: IPDS request-queue sizing.

The paper argues queued, properly-ordered requests let the program run
without delay.  This ablation sweeps the queue size and shows the
degradation collapsing to ~0 as the queue absorbs commit bursts — the
design-choice evidence behind Figure 9.
"""

import pytest

from repro.cpu import IPDSHardwareParams, normalized_performance

QUEUE_SIZES = [2, 4, 8, 16, 32, 64]

_DEGRADATION = {}


@pytest.mark.parametrize("queue_size", QUEUE_SIZES)
def test_queue_size_sweep(
    benchmark, compiled_workloads, workload_inputs, queue_size
):
    _, program = compiled_workloads["sendmail"]
    inputs = workload_inputs("sendmail", scale=10)
    params = IPDSHardwareParams(request_queue_size=queue_size)

    def run():
        return normalized_performance(
            program, inputs, "sendmail", ipds_params=params
        )

    comparison = benchmark.pedantic(run, rounds=1, iterations=1)
    _DEGRADATION[queue_size] = comparison.degradation_pct
    benchmark.extra_info["degradation_pct"] = comparison.degradation_pct


def test_queue_sweep_shape(benchmark):
    if len(_DEGRADATION) < len(QUEUE_SIZES):
        pytest.skip("sweep benches did not run")
    benchmark.pedantic(lambda: dict(_DEGRADATION), rounds=1, iterations=1)
    print()
    for size in QUEUE_SIZES:
        print(f"  queue={size:3d}: degradation {_DEGRADATION[size]:6.3f}%")
    # Larger queues never hurt, and the largest is near zero.
    assert _DEGRADATION[64] <= _DEGRADATION[2] + 1e-9
    assert _DEGRADATION[64] < 0.5
    # The smallest queue must show real backpressure (the ablation's
    # point: the queue is what keeps checking off the critical path).
    assert _DEGRADATION[2] > _DEGRADATION[64]
