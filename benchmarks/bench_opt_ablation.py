"""§6 ablation: the effect of compiler optimization on detection.

The paper notes: "Noticeably, compiler optimizations can remove some
correlations, reducing the detection rate."  This ablation compiles
every workload twice — unoptimized and with the standard pipeline
(constant propagation, store-to-load forwarding, DSE, DCE) — and
compares the number of checked branches and the campaign detection
rate.  A third column compiles at ``--opt 3`` and checks the opposite
lever: the feasible-path analysis only ever *adds* SET entries over
``--opt 2``, so its detection rate can never drop below it.
"""

import os

import pytest

from repro.attacks import run_workload_campaign
from repro.pipeline import compile_program
from repro.workloads import all_workloads, workload_names

ATTACKS = int(os.environ.get("REPRO_FIG7_ATTACKS", "30"))

_CHECKED = {}
_DETECTED = {}
_SETS = {}


def _set_entries(program):
    return sum(s.set_entries for s in program.build_stats)


@pytest.mark.parametrize("name", workload_names())
def test_opt_ablation_per_workload(benchmark, name):
    workload = next(w for w in all_workloads() if w.name == name)

    def compile_all():
        plain = compile_program(workload.source, name)
        opt = compile_program(workload.source, name, opt_level=1)
        opt2 = compile_program(workload.source, name, opt_level=2)
        opt3 = compile_program(workload.source, name, opt_level=3)
        return plain, opt, opt2, opt3

    plain, opt, opt2, opt3 = benchmark.pedantic(
        compile_all, rounds=1, iterations=1
    )
    _CHECKED[name] = (plain.tables.total_checked, opt.tables.total_checked)
    # Optimization never *adds* checkable branches here (forwarding only
    # removes loads) — it can only preserve or remove correlations.
    assert opt.tables.total_checked <= plain.tables.total_checked
    # The feasible-path pass works the other lever: same checked
    # branches, strictly more proved actions.
    _SETS[name] = (_set_entries(opt2), _set_entries(opt3))
    assert _set_entries(opt3) >= _set_entries(opt2)
    benchmark.extra_info["checked_plain"] = plain.tables.total_checked
    benchmark.extra_info["checked_opt"] = opt.tables.total_checked
    benchmark.extra_info["sets_opt2"] = _set_entries(opt2)
    benchmark.extra_info["sets_opt3"] = _set_entries(opt3)

    plain_result = run_workload_campaign(
        workload, attacks=ATTACKS, program=plain
    )
    opt_result = run_workload_campaign(workload, attacks=ATTACKS, program=opt)
    opt2_result = run_workload_campaign(
        workload, attacks=ATTACKS, program=opt2
    )
    opt3_result = run_workload_campaign(
        workload, attacks=ATTACKS, program=opt3
    )
    _DETECTED[name] = (
        plain_result.pct_detected,
        opt_result.pct_detected,
        opt3_result.pct_detected,
    )
    # More proved actions can only add alarms on the same seeds.
    assert opt3_result.pct_detected >= opt2_result.pct_detected


def test_opt_ablation_summary(benchmark):
    if len(_CHECKED) < len(workload_names()):
        pytest.skip("per-workload ablations did not run")
    summary = benchmark.pedantic(
        lambda: (dict(_CHECKED), dict(_DETECTED)), rounds=1, iterations=1
    )
    checked, detected = summary
    print()
    print(
        f"{'workload':10s} {'checked':>14s} {'sets 2->3':>14s}"
        f" {'detected %':>22s}"
    )
    for name in workload_names():
        cp, co = checked[name]
        s2, s3 = _SETS[name]
        dp, do, d3 = detected[name]
        print(
            f"{name:10s} {cp:6d} -> {co:4d} {s2:6d} -> {s3:4d}"
            f" {dp:9.1f} -> {do:5.1f} -> {d3:5.1f}"
        )
    total_plain = sum(c[0] for c in checked.values())
    total_opt = sum(c[1] for c in checked.values())
    print(f"checked branches: {total_plain} -> {total_opt}")
    # The paper's observation, in aggregate.
    assert total_opt <= total_plain
    # The opt-3 counterpoint, in aggregate: feasible-path analysis
    # recovers proofs (more SET entries) instead of removing them.
    assert sum(s[1] for s in _SETS.values()) > sum(
        s[0] for s in _SETS.values()
    )
    avg_plain = sum(d[0] for d in detected.values()) / len(detected)
    avg_opt = sum(d[1] for d in detected.values()) / len(detected)
    avg_opt3 = sum(d[2] for d in detected.values()) / len(detected)
    print(
        f"avg detection: {avg_plain:.1f}% -> {avg_opt:.1f}%"
        f" -> {avg_opt3:.1f}% (opt 3)"
    )
    # Detection must not *improve* materially under optimization.
    assert avg_opt <= avg_plain + 3.0
