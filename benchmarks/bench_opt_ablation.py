"""§6 ablation: the effect of compiler optimization on detection.

The paper notes: "Noticeably, compiler optimizations can remove some
correlations, reducing the detection rate."  This ablation compiles
every workload twice — unoptimized and with the standard pipeline
(constant propagation, store-to-load forwarding, DSE, DCE) — and
compares the number of checked branches and the campaign detection
rate.
"""

import os

import pytest

from repro.attacks import run_workload_campaign
from repro.pipeline import compile_program
from repro.workloads import all_workloads, workload_names

ATTACKS = int(os.environ.get("REPRO_FIG7_ATTACKS", "30"))

_CHECKED = {}
_DETECTED = {}


@pytest.mark.parametrize("name", workload_names())
def test_opt_ablation_per_workload(benchmark, name):
    workload = next(w for w in all_workloads() if w.name == name)

    def compile_both():
        plain = compile_program(workload.source, name)
        opt = compile_program(workload.source, name, opt_level=1)
        return plain, opt

    plain, opt = benchmark.pedantic(compile_both, rounds=1, iterations=1)
    _CHECKED[name] = (plain.tables.total_checked, opt.tables.total_checked)
    # Optimization never *adds* checkable branches here (forwarding only
    # removes loads) — it can only preserve or remove correlations.
    assert opt.tables.total_checked <= plain.tables.total_checked
    benchmark.extra_info["checked_plain"] = plain.tables.total_checked
    benchmark.extra_info["checked_opt"] = opt.tables.total_checked

    plain_result = run_workload_campaign(
        workload, attacks=ATTACKS, program=plain
    )
    opt_result = run_workload_campaign(workload, attacks=ATTACKS, program=opt)
    _DETECTED[name] = (plain_result.pct_detected, opt_result.pct_detected)


def test_opt_ablation_summary(benchmark):
    if len(_CHECKED) < len(workload_names()):
        pytest.skip("per-workload ablations did not run")
    summary = benchmark.pedantic(
        lambda: (dict(_CHECKED), dict(_DETECTED)), rounds=1, iterations=1
    )
    checked, detected = summary
    print()
    print(f"{'workload':10s} {'checked':>14s} {'detected %':>16s}")
    for name in workload_names():
        cp, co = checked[name]
        dp, do = detected[name]
        print(f"{name:10s} {cp:6d} -> {co:4d} {dp:9.1f} -> {do:5.1f}")
    total_plain = sum(c[0] for c in checked.values())
    total_opt = sum(c[1] for c in checked.values())
    print(f"checked branches: {total_plain} -> {total_opt}")
    # The paper's observation, in aggregate.
    assert total_opt <= total_plain
    avg_plain = sum(d[0] for d in detected.values()) / len(detected)
    avg_opt = sum(d[1] for d in detected.values()) / len(detected)
    print(f"avg detection: {avg_plain:.1f}% -> {avg_opt:.1f}%")
    # Detection must not *improve* materially under optimization.
    assert avg_opt <= avg_plain + 3.0
